// Package wal implements the durable write-ahead op log of the streaming
// update data plane: every committed mutation batch is appended — length
// prefixed, checksummed, fsynced — before the commit barrier acknowledges
// the mutation to its caller. A full process restart then recovers to the
// exact pre-crash committed version by loading the newest checkpoint
// (internal/snapshot) and replaying the WAL tail beyond it, instead of
// losing every op committed after the last checkpoint.
//
// # On-disk format
//
// The log is a directory of segment files, "wal-<prev-version>.qlog",
// where <prev-version> is the zero-padded committed version the segment's
// first record chains from (so lexical directory order is version order).
// Each segment starts with a fixed header:
//
//	magic   [4]byte  "QWAL"
//	format  uint32   1
//	graph   uint64   graph identity the log belongs to
//	prev    uint64   committed version the first record chains from
//
// followed by records, one per committed batch:
//
//	length  uint32   payload length
//	crc     uint64   CRC-64/ECMA over the payload
//	payload          version uint64, nops uint32, ops (13 bytes each:
//	                 kind u8, from i32, to i32, weight f32)
//
// The payload framing is the shared batch encoding of internal/delta
// (delta.BatchWireBytes), and the graph id plus the explicit per-record
// version chain make a segment self-describing: a sharded controller
// bootstrapping from someone else's log can verify both what graph it is
// replaying and that no version is missing.
//
// # Crash safety
//
// Records are appended then fsynced; segment headers are written to a
// temp file and renamed, so every *.qlog that exists has a complete
// header. A crash mid-append leaves a torn final record, detected by the
// length prefix or the checksum and truncated away at the next Open — the
// torn record's batch was never acknowledged (the fsync happens before
// the ack), so dropping it loses nothing that was promised. Truncation of
// replayed history (after a durable checkpoint) deletes whole segments,
// which is atomic per segment.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
)

const (
	fileMagic  = "QWAL"
	fileFormat = 1
	fileExt    = ".qlog"
	tmpSuffix  = ".tmp"
	headerSize = 4 + 4 + 8 + 8
	recHdrSize = 4 + 8

	// floorFile persists the truncation floor: the committed version the
	// oldest *ever-retained* history chains from. Without it, a directory
	// whose every segment was truncated away (or removed mid-Rebase by a
	// crash) reads as an empty tail — indistinguishable from "no ops" — and
	// a follower whose base predates the floor would silently believe it is
	// caught up. With it, ReadTail can return delta.ErrGap whenever the
	// retained chain does not provably connect to the requested version.
	floorFile  = "wal.floor"
	floorMagic = "QWFL"

	// maxRecordPayload bounds a record's length prefix so a corrupt
	// prefix cannot trigger a huge allocation.
	maxRecordPayload = 1 << 28

	// DefaultSegmentBytes is the rotation threshold: a segment past it is
	// closed and a new one started, so truncation (whole segments only)
	// keeps pace with checkpointing.
	DefaultSegmentBytes = 4 << 20
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// segInfo is one scanned segment.
type segInfo struct {
	path string
	prev uint64 // version the first record chains from
	last uint64 // last record's version (== prev when empty)
	size int64
}

// WAL is an open write-ahead log. Append/TruncateTo/Rebase are owned by
// one writer (the controller); Stats is safe from any goroutine.
type WAL struct {
	dir     string
	graphID uint64

	// SegmentBytes is the rotation threshold; set it before the first
	// Append to override DefaultSegmentBytes (tests use tiny segments).
	SegmentBytes int64

	mu       sync.Mutex
	f        *os.File // head segment, opened for append
	segs     []segInfo
	head     uint64
	floor    uint64 // persisted truncation floor (see floorFile)
	hasFloor bool

	appends        atomic.Int64
	appendedBytes  atomic.Int64
	appendErrors   atomic.Int64
	truncatedSegs  atomic.Int64
	lastFsync      atomic.Int64 // nanoseconds
	totalFsync     atomic.Int64
	fsyncs         atomic.Int64
	groupedAppends atomic.Int64
	lastGroupSize  atomic.Int64
	baseMirror     atomic.Uint64
	headMirror     atomic.Uint64
	segsMirror     atomic.Int64

	// Group-commit state (see group.go). gcMu guards gcClosed and covers
	// every Enqueue send, so a request can never land in the queue after
	// the committer's shutdown drain. pendingSize tracks the head
	// segment's size including records written but not yet fsynced; it is
	// 0 between groups (a segment is never empty — the header counts).
	gcMu        sync.Mutex
	gcClosed    bool
	gcCh        chan gcReq
	gcQuit      chan struct{}
	gcDone      chan struct{}
	pendingSize int64
}

// Stats is the WAL introspection block of /stats.
type Stats struct {
	Enabled       bool   `json:"enabled"`
	BaseVersion   uint64 `json:"base_version"`
	HeadVersion   uint64 `json:"head_version"`
	Segments      int    `json:"segments"`
	Appends       int64  `json:"appends"`
	AppendedBytes int64  `json:"appended_bytes"`
	AppendErrors  int64  `json:"append_errors,omitempty"`
	TruncatedSegs int64  `json:"truncated_segments,omitempty"`
	LastFsyncUS   int64  `json:"last_fsync_us"`
	MeanFsyncUS   int64  `json:"mean_fsync_us"`
	// Group-commit amortization: Fsyncs counts actual disk syncs (<=
	// Appends when batches share one), GroupedAppends counts appends that
	// rode a multi-batch sync, MeanBatchesPerFsync is the amortization
	// factor (1.0 = no sharing), LastGroupSize is the most recent group.
	Fsyncs              int64   `json:"fsyncs"`
	GroupedAppends      int64   `json:"grouped_appends,omitempty"`
	MeanBatchesPerFsync float64 `json:"mean_batches_per_fsync"`
	LastGroupSize       int64   `json:"last_group_size,omitempty"`
}

// Open opens (or creates) the WAL in dir for graphID, repairing a torn
// tail: the first record that is short, corrupt, or out of chain — and
// everything after it — is truncated away. A log written for a different
// graph id is an error, never silently replayed.
func Open(dir string, graphID uint64) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, graphID: graphID, SegmentBytes: DefaultSegmentBytes}
	w.gcCh = make(chan gcReq, gcQueueDepth)
	w.gcQuit = make(chan struct{})
	w.gcDone = make(chan struct{})
	w.floor, w.hasFloor = readFloor(dir)
	// Sweep rotation temp files a crash left behind.
	if tmps, err := filepath.Glob(filepath.Join(dir, "wal-*"+fileExt+tmpSuffix)); err == nil {
		for _, p := range tmps {
			_ = os.Remove(p)
		}
	}
	segs, err := scanDir(dir, graphID, true)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.newSegment(0); err != nil {
			return nil, err
		}
		w.publishMirrors()
		go w.groupLoop()
		return w, nil
	}
	w.segs = segs
	w.head = segs[len(segs)-1].last
	head := &w.segs[len(w.segs)-1]
	f, err := os.OpenFile(head.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.publishMirrors()
	go w.groupLoop()
	return w, nil
}

// Base returns the version the oldest retained segment chains from:
// records replay over a graph at this version (or any newer version the
// retained chain covers). Safe from any goroutine.
func (w *WAL) Base() uint64 { return w.baseMirror.Load() }

// Head returns the last durably appended version. Safe from any goroutine.
func (w *WAL) Head() uint64 { return w.headMirror.Load() }

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// publishMirrors refreshes the lock-free stats mirrors. Caller holds mu
// (or is single-threaded during Open).
func (w *WAL) publishMirrors() {
	if len(w.segs) > 0 {
		w.baseMirror.Store(w.segs[0].prev)
	} else {
		w.baseMirror.Store(w.head)
	}
	w.headMirror.Store(w.head)
	w.segsMirror.Store(int64(len(w.segs)))
}

// Stats returns the log's accounting. Safe from any goroutine.
func (w *WAL) Stats() Stats {
	st := Stats{
		Enabled:        true,
		BaseVersion:    w.baseMirror.Load(),
		HeadVersion:    w.headMirror.Load(),
		Segments:       int(w.segsMirror.Load()),
		Appends:        w.appends.Load(),
		AppendedBytes:  w.appendedBytes.Load(),
		AppendErrors:   w.appendErrors.Load(),
		TruncatedSegs:  w.truncatedSegs.Load(),
		LastFsyncUS:    w.lastFsync.Load() / int64(time.Microsecond),
		Fsyncs:         w.fsyncs.Load(),
		GroupedAppends: w.groupedAppends.Load(),
		LastGroupSize:  w.lastGroupSize.Load(),
	}
	if n := st.Fsyncs; n > 0 {
		st.MeanFsyncUS = w.totalFsync.Load() / n / int64(time.Microsecond)
		st.MeanBatchesPerFsync = float64(st.Appends) / float64(n)
	}
	return st
}

// Append durably logs the ops committed as version v: write, fsync, then
// return. Versions must be appended contiguously from Head. On a write or
// sync error the partial record is truncated away so the segment stays
// parseable, and the error is returned — the caller must not acknowledge
// the batch.
func (w *WAL) Append(v uint64, ops []delta.Op) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if want := w.head + 1; v != want {
		return fmt.Errorf("wal: append version %d, want %d", v, want)
	}
	head := &w.segs[len(w.segs)-1]
	if head.size >= w.segmentLimit() && head.last > head.prev {
		// Rotate before the write so a rotation failure just keeps
		// appending to the old segment (the record is never at risk).
		if err := w.rotate(); err == nil {
			head = &w.segs[len(w.segs)-1]
		} else {
			w.appendErrors.Add(1)
		}
	}
	rec := encodeRecord(v, ops)
	fail := func(err error) error {
		w.appendErrors.Add(1)
		// Cut the segment back to its last good record so a later append
		// (or the next Open) never sees a half-written record followed by
		// a whole one.
		_ = w.f.Truncate(head.size)
		return fmt.Errorf("wal: append version %d: %w", v, err)
	}
	if _, err := w.f.Write(rec); err != nil {
		return fail(err)
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	d := time.Since(t0)
	w.lastFsync.Store(int64(d))
	w.totalFsync.Add(int64(d))
	w.fsyncs.Add(1)
	w.lastGroupSize.Store(1)
	head.size += int64(len(rec))
	head.last = v
	w.head = v
	w.appends.Add(1)
	w.appendedBytes.Add(int64(len(rec)))
	w.publishMirrors()
	return nil
}

func (w *WAL) segmentLimit() int64 {
	if w.SegmentBytes > 0 {
		return w.SegmentBytes
	}
	return DefaultSegmentBytes
}

// rotate starts a fresh segment chaining from the current head version,
// then closes the old one. Creation comes first: if it fails, the old
// segment is still open and appendable, so a transient rotation error
// costs nothing but an oversized segment. Caller holds mu.
func (w *WAL) rotate() error {
	old := w.f
	if err := w.newSegment(w.head); err != nil {
		return err
	}
	return old.Close()
}

// newSegment creates and opens a segment chaining from prev. The header
// is written via temp+rename so a crash can never leave a *.qlog with a
// partial header. Caller holds mu (or is single-threaded during Open).
func (w *WAL) newSegment(prev uint64) error {
	path := filepath.Join(w.dir, segName(prev))
	tmp := path + tmpSuffix
	hdr := make([]byte, headerSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], fileFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], w.graphID)
	binary.LittleEndian.PutUint64(hdr[16:24], prev)
	if err := os.WriteFile(tmp, hdr, 0o644); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(w.dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.head = prev
	w.segs = append(w.segs, segInfo{path: path, prev: prev, last: prev, size: headerSize})
	w.publishMirrors()
	return nil
}

// TruncateTo deletes every segment fully covered by a durable checkpoint
// at version v (segment.last <= v), never the head segment, and returns
// the number of segments released. Restart recovery is snapshot + tail,
// so the caller must hold a durable snapshot at >= v before truncating.
func (w *WAL) TruncateTo(v uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for len(w.segs) > 1 && w.segs[0].last <= v {
		if err := os.Remove(w.segs[0].path); err != nil {
			break
		}
		w.segs = w.segs[1:]
		n++
	}
	if n > 0 {
		// Record where the retained chain now starts. Best-effort: a write
		// failure only leaves the floor conservatively low, and the head
		// segment (never deleted here) still carries its own prev for the
		// gap check.
		if err := writeFloor(w.dir, w.segs[0].prev); err == nil {
			w.floor, w.hasFloor = w.segs[0].prev, true
		}
		syncDir(w.dir)
		w.truncatedSegs.Add(int64(n))
		w.publishMirrors()
	}
	return n
}

// Rebase aligns an empty-or-stale log with a caller starting at committed
// version v (a deployment restored from a checkpoint newer than anything
// the log holds): every retained segment is dropped and a fresh one
// chains from v. A log whose head is beyond v refuses — the caller must
// replay the tail first, not discard it.
func (w *WAL) Rebase(v uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head == v {
		return nil
	}
	if w.head > v {
		return fmt.Errorf("wal: rebase to %d behind head %d (replay the tail instead)", v, w.head)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Persist the floor BEFORE removing segments: a crash in the removal
	// window leaves a directory with no segments at all, and without the
	// floor that reads as an empty tail instead of a gap.
	if err := writeFloor(w.dir, v); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.floor, w.hasFloor = v, true
	for _, s := range w.segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	w.segs = nil
	syncDir(w.dir)
	return w.newSegment(v)
}

// Since reads back every durable batch with Version > v, in order. v
// below Base is a delta.ErrGap — the segments covering it were truncated
// after a checkpoint, so the retained chain does not connect.
func (w *WAL) Since(v uint64) ([]delta.LogBatch, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return readSegs(w.segs, w.graphID, v, w.floor, w.hasFloor)
}

// Close stops the group committer (failing anything still queued), then
// closes the head segment file. The log stays replayable on disk.
func (w *WAL) Close() error {
	w.gcMu.Lock()
	if !w.gcClosed {
		w.gcClosed = true
		close(w.gcQuit)
	}
	w.gcMu.Unlock()
	<-w.gcDone
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// segName returns the segment file name chaining from version prev.
func segName(prev uint64) string {
	return fmt.Sprintf("wal-%016d%s", prev, fileExt)
}

// writeFloor atomically persists the truncation floor for dir: the
// committed version below which history is no longer retained. Written by
// TruncateTo (after dropping covered segments) and by Rebase (before
// dropping every segment, covering the crash window that leaves the
// directory empty).
func writeFloor(dir string, v uint64) error {
	buf := make([]byte, 12)
	copy(buf, floorMagic)
	binary.LittleEndian.PutUint64(buf[4:12], v)
	path := filepath.Join(dir, floorFile)
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readFloor loads the persisted truncation floor, if any. A missing or
// malformed floor file reads as "never truncated" — the pre-floor format,
// where the oldest segment's prev is the only gap evidence.
func readFloor(dir string) (uint64, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, floorFile))
	if err != nil || len(raw) != 12 || string(raw[:4]) != floorMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint64(raw[4:12]), true
}

// syncDir fsyncs a directory so file creation/removal is durable —
// best-effort, since not every platform or filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// encodeRecord frames one committed batch as a WAL record.
func encodeRecord(v uint64, ops []delta.Op) []byte {
	payloadLen := int(delta.BatchWireBytes(len(ops)))
	rec := make([]byte, recHdrSize+payloadLen)
	payload := rec[recHdrSize:]
	binary.LittleEndian.PutUint64(payload[0:8], v)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(ops)))
	off := delta.BatchWireOverhead
	for _, op := range ops {
		payload[off] = byte(op.Kind)
		binary.LittleEndian.PutUint32(payload[off+1:], uint32(int32(op.From)))
		binary.LittleEndian.PutUint32(payload[off+5:], uint32(int32(op.To)))
		binary.LittleEndian.PutUint32(payload[off+9:], math.Float32bits(op.Weight))
		off += delta.OpWireBytes
	}
	binary.LittleEndian.PutUint32(rec[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(rec[4:12], crc64.Checksum(payload, crcTable))
	return rec
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (delta.LogBatch, error) {
	if len(payload) < delta.BatchWireOverhead {
		return delta.LogBatch{}, fmt.Errorf("wal: record payload %d bytes", len(payload))
	}
	b := delta.LogBatch{Version: binary.LittleEndian.Uint64(payload[0:8])}
	n := int(binary.LittleEndian.Uint32(payload[8:12]))
	if int64(len(payload)) != delta.BatchWireBytes(n) {
		return delta.LogBatch{}, fmt.Errorf("wal: record claims %d ops in %d bytes", n, len(payload))
	}
	if n > 0 {
		b.Ops = make([]delta.Op, n)
		off := delta.BatchWireOverhead
		for i := range b.Ops {
			b.Ops[i] = delta.Op{
				Kind:   delta.OpKind(payload[off]),
				From:   graph.VertexID(int32(binary.LittleEndian.Uint32(payload[off+1:]))),
				To:     graph.VertexID(int32(binary.LittleEndian.Uint32(payload[off+5:]))),
				Weight: math.Float32frombits(binary.LittleEndian.Uint32(payload[off+9:])),
			}
			off += delta.OpWireBytes
		}
	}
	return b, nil
}

// scanSegment parses one segment file: header checks, then records up to
// the first torn or out-of-chain one. It returns the segment info (good
// prefix only), the parsed batches when collect is set, and the byte
// offset of the good prefix — the truncation point when the tail is torn.
func scanSegment(path string, graphID uint64, collect bool) (seg segInfo, batches []delta.LogBatch, good int64, torn bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return segInfo{}, nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	if len(raw) < headerSize || string(raw[:4]) != fileMagic {
		// A header this broken cannot happen from a crash (headers are
		// written via temp+rename); treat the whole file as torn.
		return segInfo{path: path}, nil, 0, true, nil
	}
	if f := binary.LittleEndian.Uint32(raw[4:8]); f != fileFormat {
		return segInfo{}, nil, 0, false, fmt.Errorf("wal: %s: unknown format %d", path, f)
	}
	if id := binary.LittleEndian.Uint64(raw[8:16]); id != graphID {
		return segInfo{}, nil, 0, false, fmt.Errorf("wal: %s: graph id %#x, want %#x (wrong graph for this log)", path, id, graphID)
	}
	prev := binary.LittleEndian.Uint64(raw[16:24])
	seg = segInfo{path: path, prev: prev, last: prev}
	off := int64(headerSize)
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < recHdrSize {
			torn = true
			break
		}
		plen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if plen > maxRecordPayload || recHdrSize+plen > int64(len(rest)) {
			torn = true
			break
		}
		payload := rest[recHdrSize : recHdrSize+plen]
		if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(rest[4:12]) {
			torn = true
			break
		}
		b, derr := decodeRecord(payload)
		if derr != nil || b.Version != seg.last+1 {
			torn = true
			break
		}
		if collect {
			batches = append(batches, b)
		}
		seg.last = b.Version
		off += recHdrSize + plen
	}
	seg.size = off
	return seg, batches, off, torn, nil
}

// scanDir scans every segment in version order, verifying the chain
// across segments. With repair set, a torn tail is truncated in place and
// any segments after the tear are deleted; without it the scan just stops
// at the tear (read-only callers tolerate a torn tail).
func scanDir(dir string, graphID uint64, repair bool) ([]segInfo, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*"+fileExt))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(paths) // zero-padded versions: lexical order is version order
	var segs []segInfo
	for i, p := range paths {
		seg, _, good, torn, err := scanSegment(p, graphID, false)
		if err != nil {
			return nil, err
		}
		if !torn && len(segs) > 0 && seg.prev != segs[len(segs)-1].last {
			// A segment that does not chain from its predecessor: replaying
			// across it would skip versions. Treat everything from here on
			// as unusable.
			torn, good = true, 0
		}
		if !torn {
			segs = append(segs, seg)
			continue
		}
		if repair {
			if good <= headerSize {
				// Nothing usable in this segment; drop it (and everything
				// after it, below).
				_ = os.Remove(p)
			} else {
				if err := os.Truncate(p, good); err != nil {
					return nil, fmt.Errorf("wal: repairing %s: %w", p, err)
				}
				segs = append(segs, seg)
			}
			for _, later := range paths[i+1:] {
				_ = os.Remove(later)
			}
			syncDir(dir)
		} else if good > headerSize {
			segs = append(segs, seg)
		}
		break
	}
	return segs, nil
}

// readSegs collects batches with Version > v from scanned segments,
// re-reading each file. Torn tails already ended the seg list at scan
// time, so every record a listed segment covers is intact. floor (when
// known) is the persisted truncation floor: with no segments retained at
// all, it is the only evidence distinguishing "log truncated past v"
// (a gap) from "nothing ever logged" (an empty tail).
func readSegs(segs []segInfo, graphID uint64, v uint64, floor uint64, hasFloor bool) ([]delta.LogBatch, error) {
	if len(segs) == 0 {
		if hasFloor && v < floor {
			return nil, fmt.Errorf("wal: tail from version %d predates truncation floor %d with no segments retained: %w",
				v, floor, delta.ErrGap)
		}
		return nil, nil
	}
	if v < segs[0].prev {
		return nil, fmt.Errorf("wal: tail from version %d predates retained base %d: %w",
			v, segs[0].prev, delta.ErrGap)
	}
	var out []delta.LogBatch
	for _, s := range segs {
		if s.last <= v {
			continue
		}
		_, batches, _, _, err := scanSegment(s.path, graphID, true)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			if b.Version > v {
				out = append(out, b)
			}
		}
	}
	return out, nil
}

// ReadTail reads the durable batches with Version > from without taking
// ownership of the log or repairing anything — the startup path of nodes
// that replay the WAL but do not write it (workers). A missing or empty
// directory is an empty tail, not an error; from below the retained base
// is a delta.ErrGap (the covering checkpoint must be loaded first).
func ReadTail(dir string, graphID uint64, from uint64) ([]delta.LogBatch, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil, nil
	}
	segs, err := scanDir(dir, graphID, false)
	if err != nil {
		return nil, err
	}
	floor, hasFloor := readFloor(dir)
	return readSegs(segs, graphID, from, floor, hasFloor)
}

// RecoverGraph folds the WAL tail beyond baseV into base: the startup
// path of every node of a -wal-dir deployment, run after loading the
// newest checkpoint. It returns the recovered graph and version — the
// exact pre-crash committed state, since every committed batch was
// fsynced before its ack.
func RecoverGraph(dir string, graphID uint64, base *graph.Graph, baseV uint64) (*graph.Graph, uint64, error) {
	tail, err := ReadTail(dir, graphID, baseV)
	if err != nil {
		return nil, 0, err
	}
	if len(tail) == 0 {
		return base, baseV, nil
	}
	view, err := delta.ReplayBatchesFrom(base, baseV, tail)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: replaying tail: %w", err)
	}
	return view.Materialize(), view.Version(), nil
}
