package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"qgraph/internal/delta"
)

// Tailer incrementally follows a WAL directory written by another process
// (the primary), returning newly durable batches on each Poll. Unlike
// ReadTail — which re-reads and re-parses every segment file on every
// call — the tailer keeps a per-segment byte offset and resumes mid-file,
// so a steady-state poll costs O(new bytes), not O(segment).
//
// Only whole, CRC-verified, chain-consecutive records advance the offset;
// a partial record at the tail (the writer mid-append, not yet fsynced)
// is left in place and retried on the next poll. Segment rotation is
// detected by name: rotate() creates "wal-<last>.qlog" chaining from the
// sealed segment's final version before closing it, and segment names are
// unique per chain version, so the successor's existence proves the
// current segment will never grow again.
//
// Poll and Version must be called from one goroutine (the replica's apply
// loop); the stats counters are atomics and safe to read from any.
type Tailer struct {
	dir     string
	graphID uint64
	version uint64 // last version returned; the next poll resumes after it

	attached bool
	cur      tailSeg

	polls     atomic.Int64
	bytesRead atomic.Int64
	batches   atomic.Int64
	attaches  atomic.Int64
	verMirror atomic.Uint64
}

// tailSeg is the tailer's cursor into one segment file.
type tailSeg struct {
	path string
	last uint64 // last chained version parsed from this segment
	off  int64  // byte offset of the next unread record
}

// TailerStats is the replica-side accounting of a tailer.
type TailerStats struct {
	Version   uint64 `json:"version"`
	Polls     int64  `json:"polls"`
	BytesRead int64  `json:"bytes_read"`
	Batches   int64  `json:"batches"`
	Attaches  int64  `json:"attaches"`
}

// NewTailer positions a tailer after committed version from: the first
// Poll returns batches with Version > from. The directory may not exist
// yet; polling attaches once it does.
func NewTailer(dir string, graphID uint64, from uint64) *Tailer {
	t := &Tailer{dir: dir, graphID: graphID, version: from}
	t.verMirror.Store(from)
	return t
}

// Version returns the last version Poll has returned.
func (t *Tailer) Version() uint64 { return t.verMirror.Load() }

// Stats returns the tailer's counters. Safe from any goroutine.
func (t *Tailer) Stats() TailerStats {
	return TailerStats{
		Version:   t.verMirror.Load(),
		Polls:     t.polls.Load(),
		BytesRead: t.bytesRead.Load(),
		Batches:   t.batches.Load(),
		Attaches:  t.attaches.Load(),
	}
}

// Poll returns every batch that became durable since the last call, in
// version order; an empty slice means caught up. delta.ErrGap (wrapped)
// means the primary truncated or rebased the log past the tailer's
// position — the follower must re-bootstrap from a newer checkpoint.
func (t *Tailer) Poll() ([]delta.LogBatch, error) {
	t.polls.Add(1)
	if !t.attached {
		if err := t.attach(); err != nil || !t.attached {
			return nil, err
		}
	}
	var out []delta.LogBatch
	reattached := false
	for {
		batches, err := t.readCur()
		if err != nil {
			if !os.IsNotExist(err) {
				return out, err
			}
			// The segment under the cursor vanished: the primary truncated
			// (or rebased) past it. Re-attach once — either the retained
			// chain still covers our position (we resume) or attach reports
			// the gap.
			if reattached {
				return out, nil
			}
			reattached = true
			t.attached = false
			if err := t.attach(); err != nil || !t.attached {
				return out, err
			}
			continue
		}
		out = append(out, batches...)
		// Rotation: a segment named for our current last version is the
		// successor, and its existence proves the current segment is
		// sealed. (If the writer appended more records here first, the
		// successor would be named for a later version — the next readCur
		// picks those records up and we test again.)
		next := segName(t.cur.last)
		if next == filepath.Base(t.cur.path) {
			return out, nil // empty current segment; no successor possible yet
		}
		nextPath := filepath.Join(t.dir, next)
		if _, err := os.Stat(nextPath); err != nil {
			return out, nil // no successor: caught up (or mid-write; retry later)
		}
		t.cur = tailSeg{path: nextPath, last: t.cur.last, off: headerSize}
	}
}

// attach scans the directory once (the only O(log) step) and positions the
// cursor inside the segment covering version+1. Not finding the directory
// or any segments is not an error unless the persisted truncation floor
// proves our position was truncated away.
func (t *Tailer) attach() error {
	segs, err := scanDir(t.dir, t.graphID, false)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		if floor, ok := readFloor(t.dir); ok && t.version < floor {
			return fmt.Errorf("wal: tailing from version %d but the log was truncated to %d: %w",
				t.version, floor, delta.ErrGap)
		}
		return nil // nothing to tail yet; stay detached
	}
	if t.version < segs[0].prev {
		return fmt.Errorf("wal: tailing from version %d predates retained base %d: %w",
			t.version, segs[0].prev, delta.ErrGap)
	}
	// The segment whose records cover version+1 is the last one chaining
	// from <= version. Records at or below version inside it are skipped
	// by readCur's version filter.
	idx := 0
	for i, s := range segs {
		if s.prev <= t.version {
			idx = i
		}
	}
	t.cur = tailSeg{path: segs[idx].path, last: segs[idx].prev, off: headerSize}
	t.attached = true
	t.attaches.Add(1)
	return nil
}

// readCur reads [off, size) of the current segment and parses whole
// records, advancing the offset past each verified one. A short, corrupt,
// or out-of-chain suffix ends the read without advancing past it: if it
// is the writer mid-append the next poll completes it; if it is a genuine
// tear the writer repairs it at its next Open and rotation moves us past.
func (t *Tailer) readCur() ([]delta.LogBatch, error) {
	f, err := os.Open(t.cur.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() <= t.cur.off {
		return nil, nil
	}
	buf := make([]byte, st.Size()-t.cur.off)
	if _, err := f.ReadAt(buf, t.cur.off); err != nil && err != io.EOF {
		return nil, fmt.Errorf("wal: tailing %s: %w", t.cur.path, err)
	}
	t.bytesRead.Add(int64(len(buf)))
	var out []delta.LogBatch
	pos := 0
	for {
		rest := buf[pos:]
		if len(rest) < recHdrSize {
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest[0:4]))
		if plen > maxRecordPayload || recHdrSize+plen > len(rest) {
			break
		}
		payload := rest[recHdrSize : recHdrSize+plen]
		if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(rest[4:12]) {
			break
		}
		b, derr := decodeRecord(payload)
		if derr != nil || b.Version != t.cur.last+1 {
			break
		}
		pos += recHdrSize + plen
		t.cur.off += int64(recHdrSize + plen)
		t.cur.last = b.Version
		if b.Version > t.version {
			t.version = b.Version
			t.verMirror.Store(b.Version)
			t.batches.Add(1)
			out = append(out, b)
		}
	}
	return out, nil
}
