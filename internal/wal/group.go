package wal

import (
	"errors"
	"fmt"
	"time"

	"qgraph/internal/delta"
)

// Group commit: the commit pipeline stages batches faster than the disk
// can fsync, so a committer goroutine drains everything queued since the
// last sync, writes all the records, and pays ONE fsync for the lot. Each
// batch is acked individually with its own version once the shared sync
// returns — durability semantics are exactly Append's (fsync before ack),
// only the cost is amortized. The on-disk format is unchanged: one record
// per version, so readers (recovery, replica tailers) never know whether
// a record was synced alone or in a group.

// ErrClosed is returned on the ack channel for batches still queued when
// the WAL closes.
var ErrClosed = errors.New("wal: closed")

// AppendAck reports the fate of one batch handed to Enqueue.
type AppendAck struct {
	Version uint64
	Err     error
	// GroupSize is how many batches shared this batch's fsync.
	GroupSize int
	// First marks the first batch of its fsync group — observe per-group
	// metrics (e.g. the fsync-batch-size histogram) on this ack only.
	First bool
	// FsyncUS is the shared fsync's duration in microseconds.
	FsyncUS int64
}

type gcReq struct {
	v   uint64
	ops []delta.Op
	ack chan<- AppendAck
}

// gcQueueDepth bounds queued-but-unwritten batches. The controller caps
// its in-flight sealed batches well below this, so Enqueue never blocks
// the event loop in practice.
const gcQueueDepth = 256

// maxGroup caps how many batches one fsync may cover, bounding the blast
// radius of a single write error.
const maxGroup = 128

// Enqueue hands one batch to the group committer; the result arrives on
// ack (which must have capacity, or the committer would stall). Versions
// must be enqueued contiguously from Head by a single producer — the same
// contract as Append, checked the same way. Acks are delivered in version
// order.
//
// Enqueue and Append must not be interleaved for overlapping versions;
// the controller uses exactly one of the two paths.
func (w *WAL) Enqueue(v uint64, ops []delta.Op, ack chan<- AppendAck) {
	// The send happens under gcMu so it cannot race Close: either the flag
	// is already set (fail fast), or the request lands in the queue before
	// Close closes gcQuit — and the committer's shutdown drain will see it.
	// The send may block briefly if the queue is full, but the committer is
	// alive and draining until Close wins gcMu, so it always frees up.
	w.gcMu.Lock()
	if w.gcClosed {
		w.gcMu.Unlock()
		ack <- AppendAck{Version: v, Err: ErrClosed}
		return
	}
	w.gcCh <- gcReq{v: v, ops: ops, ack: ack}
	w.gcMu.Unlock()
}

// groupLoop is the committer goroutine: block for one request, then drain
// everything else already queued into the same fsync group.
func (w *WAL) groupLoop() {
	defer close(w.gcDone)
	for {
		var first gcReq
		select {
		case <-w.gcQuit:
			w.failQueued()
			return
		case first = <-w.gcCh:
		}
		group := append(make([]gcReq, 0, 8), first)
	drain:
		for len(group) < maxGroup {
			select {
			case r := <-w.gcCh:
				group = append(group, r)
			default:
				break drain
			}
		}
		w.commitGroup(group)
	}
}

// failQueued drains and fails anything still queued at shutdown.
func (w *WAL) failQueued() {
	for {
		select {
		case r := <-w.gcCh:
			r.ack <- AppendAck{Version: r.v, Err: ErrClosed}
		default:
			return
		}
	}
}

// commitGroup writes every record in the group, then syncs once and acks
// each batch. A write error fails the broken batch and everything after
// it (versions are contiguous, so later batches cannot commit over the
// gap); batches already written are synced and acked as committed.
func (w *WAL) commitGroup(group []gcReq) {
	w.mu.Lock()
	written := 0 // batches whose records are in the file
	preSize := w.segs[len(w.segs)-1].size
	var writeErr error
	for _, r := range group {
		if err := w.writeRecordLocked(r.v, r.ops); err != nil {
			writeErr = err
			break
		}
		written++
	}
	var syncErr error
	var fsyncDur time.Duration
	if written > 0 {
		t0 := time.Now()
		syncErr = w.f.Sync()
		fsyncDur = time.Since(t0)
		if syncErr != nil {
			// Nothing in this group is known durable: cut the segment back
			// to its last synced record and fail every batch.
			w.appendErrors.Add(1)
			head := &w.segs[len(w.segs)-1]
			_ = w.f.Truncate(head.size)
			w.head = head.last
			written = 0
		} else {
			w.lastFsync.Store(int64(fsyncDur))
			w.totalFsync.Add(int64(fsyncDur))
			w.fsyncs.Add(1)
			head := &w.segs[len(w.segs)-1]
			if head.size != preSize {
				// writeRecordLocked rotated before the first record: the
				// group's bytes all live in the fresh segment.
				preSize = head.size
			}
			head.size = w.pendingSize
			head.last = w.head
			w.appends.Add(int64(written))
			w.appendedBytes.Add(w.pendingSize - preSize)
			if written > 1 {
				w.groupedAppends.Add(int64(written))
			}
			w.lastGroupSize.Store(int64(written))
			w.publishMirrors()
		}
	}
	w.pendingSize = 0
	w.mu.Unlock()

	fsyncUS := int64(fsyncDur / time.Microsecond)
	for i, r := range group {
		ack := AppendAck{Version: r.v, GroupSize: written, First: i == 0, FsyncUS: fsyncUS}
		switch {
		case i < written:
			// committed
		case syncErr != nil:
			ack.Err = fmt.Errorf("wal: group fsync: %w", syncErr)
		case i == written && writeErr != nil:
			ack.Err = writeErr
		default:
			ack.Err = fmt.Errorf("wal: append version %d skipped after earlier group error", r.v)
		}
		r.ack <- ack
	}
}

// writeRecordLocked appends one record without syncing, tracking the
// not-yet-durable size in w.pendingSize. Caller holds mu. On error the
// file is truncated back to the last whole record (durable or pending),
// so the segment stays parseable.
func (w *WAL) writeRecordLocked(v uint64, ops []delta.Op) error {
	if want := w.head + 1; v != want {
		return fmt.Errorf("wal: append version %d, want %d", v, want)
	}
	head := &w.segs[len(w.segs)-1]
	if w.pendingSize == 0 {
		w.pendingSize = head.size
	}
	if w.pendingSize >= w.segmentLimit() && head.last > head.prev && w.pendingSize == head.size {
		// Rotate only on a group boundary (no unsynced records pending):
		// rotation syncs and closes the old file, which would silently
		// harden batches we have not acked yet.
		if err := w.rotate(); err == nil {
			head = &w.segs[len(w.segs)-1]
			w.pendingSize = head.size
		} else {
			w.appendErrors.Add(1)
		}
	}
	rec := encodeRecord(v, ops)
	if _, err := w.f.Write(rec); err != nil {
		w.appendErrors.Add(1)
		_ = w.f.Truncate(w.pendingSize)
		return fmt.Errorf("wal: append version %d: %w", v, err)
	}
	w.pendingSize += int64(len(rec))
	w.head = v
	return nil
}
