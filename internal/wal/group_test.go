package wal

import (
	"sync"
	"testing"
)

// enqueueRange enqueues versions [from, to] and returns one ack channel
// per version, in order.
func enqueueRange(w *WAL, from, to uint64) []chan AppendAck {
	var acks []chan AppendAck
	for v := from; v <= to; v++ {
		ch := make(chan AppendAck, 1)
		w.Enqueue(v, testOps(3, int(v)), ch)
		acks = append(acks, ch)
	}
	return acks
}

func TestGroupCommitDurabilityAndOrder(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	acks := enqueueRange(w, 1, 20)
	for i, ch := range acks {
		ack := <-ch
		if ack.Err != nil {
			t.Fatalf("v%d: %v", i+1, ack.Err)
		}
		if ack.Version != uint64(i+1) {
			t.Fatalf("ack %d carries version %d", i, ack.Version)
		}
	}
	if w.Head() != 20 {
		t.Fatalf("head = %d, want 20", w.Head())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acked must be replayable after reopen.
	w2 := mustOpen(t, dir)
	defer w2.Close()
	batches, err := w2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 20 {
		t.Fatalf("replayed %d batches, want 20", len(batches))
	}
	for i, b := range batches {
		if b.Version != uint64(i+1) {
			t.Fatalf("batch %d has version %d", i, b.Version)
		}
	}
}

func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()

	// Stall the committer behind the mutex so a backlog builds, then
	// release: the backlog must ride fewer fsyncs than appends.
	w.mu.Lock()
	acks := enqueueRange(w, 1, 32)
	w.mu.Unlock()
	for _, ch := range acks {
		if ack := <-ch; ack.Err != nil {
			t.Fatal(ack.Err)
		}
	}
	st := w.Stats()
	if st.Appends != 32 {
		t.Fatalf("appends = %d, want 32", st.Appends)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("fsyncs = %d not amortized over %d appends", st.Fsyncs, st.Appends)
	}
	if st.MeanBatchesPerFsync <= 1 {
		t.Fatalf("mean batches/fsync = %v, want > 1", st.MeanBatchesPerFsync)
	}
	if st.GroupedAppends == 0 {
		t.Fatalf("no grouped appends recorded")
	}
}

func TestGroupCommitGroupMetadata(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()

	w.mu.Lock()
	acks := enqueueRange(w, 1, 8)
	w.mu.Unlock()
	firsts := 0
	var groupTotal int
	for _, ch := range acks {
		ack := <-ch
		if ack.Err != nil {
			t.Fatal(ack.Err)
		}
		if ack.First {
			firsts++
			groupTotal += ack.GroupSize
		}
		if ack.GroupSize < 1 {
			t.Fatalf("group size %d", ack.GroupSize)
		}
	}
	if firsts == 0 {
		t.Fatal("no group-leading ack observed")
	}
	if groupTotal != 8 {
		t.Fatalf("group sizes over leading acks sum to %d, want 8", groupTotal)
	}
}

func TestGroupCommitNonContiguousFailsTail(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()

	ch1 := make(chan AppendAck, 1)
	chBad := make(chan AppendAck, 1)
	ch2 := make(chan AppendAck, 1)
	w.mu.Lock()
	w.Enqueue(1, testOps(2, 1), ch1)
	w.Enqueue(5, testOps(2, 5), chBad) // gap: must fail
	w.Enqueue(2, testOps(2, 2), ch2)   // after the gap: must fail too
	w.mu.Unlock()
	if ack := <-ch1; ack.Err != nil {
		t.Fatalf("v1: %v", ack.Err)
	}
	if ack := <-chBad; ack.Err == nil {
		t.Fatal("non-contiguous version accepted")
	}
	if ack := <-ch2; ack.Err == nil {
		t.Fatal("batch after group error accepted")
	}
	if w.Head() != 1 {
		t.Fatalf("head = %d, want 1", w.Head())
	}
	// The log must still accept the correct next version.
	chNext := make(chan AppendAck, 1)
	w.Enqueue(2, testOps(2, 2), chNext)
	if ack := <-chNext; ack.Err != nil {
		t.Fatalf("v2 after recovery: %v", ack.Err)
	}
}

func TestGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	w.SegmentBytes = 256 // force rotations between groups
	for v := uint64(1); v <= 40; v++ {
		ch := make(chan AppendAck, 1)
		w.Enqueue(v, testOps(4, int(v)), ch)
		if ack := <-ch; ack.Err != nil {
			t.Fatal(ack.Err)
		}
	}
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir)
	defer w2.Close()
	batches, err := w2.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 40 {
		t.Fatalf("replayed %d, want 40", len(batches))
	}
}

func TestGroupCommitCloseFailsQueued(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	var acks []chan AppendAck
	w.mu.Lock()
	acks = enqueueRange(w, 1, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Close() // blocks on mu-held group, then drains
	}()
	w.mu.Unlock()
	wg.Wait()
	// Every batch got SOME answer: committed before the close won the
	// race, or ErrClosed.
	for i, ch := range acks {
		select {
		case <-ch:
		default:
			t.Fatalf("v%d never acked", i+1)
		}
	}
	// Late enqueue after close fails immediately.
	ch := make(chan AppendAck, 1)
	w.Enqueue(99, testOps(1, 1), ch)
	if ack := <-ch; ack.Err == nil {
		t.Fatal("enqueue after close succeeded")
	}
}
