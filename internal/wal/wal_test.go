package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
)

const testGraphID = 0xfeedface

func testOps(n int, seed int) []delta.Op {
	ops := make([]delta.Op, n)
	for i := range ops {
		ops[i] = delta.Op{
			Kind: delta.OpAddEdge, From: graph.VertexID(seed % 4),
			To: graph.VertexID((seed + i) % 4), Weight: float32(seed+i) + 0.5,
		}
	}
	return ops
}

func mustOpen(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := Open(dir, testGraphID)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendN(t *testing.T, w *WAL, from, to uint64) {
	t.Helper()
	for v := from; v <= to; v++ {
		if err := w.Append(v, testOps(3, int(v))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	if err := w.Append(2, nil); err == nil {
		t.Fatal("non-contiguous first append accepted")
	}
	appendN(t, w, 1, 5)
	if err := w.Append(5, nil); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if w.Head() != 5 || w.Base() != 0 {
		t.Fatalf("head=%d base=%d", w.Head(), w.Base())
	}
	got, err := w.Since(2)
	if err != nil || len(got) != 3 || got[0].Version != 3 || got[2].Version != 5 {
		t.Fatalf("Since(2) = %+v, %v", got, err)
	}
	if ops := got[0].Ops; len(ops) != 3 || ops[0] != testOps(3, 3)[0] {
		t.Fatalf("ops did not round-trip: %+v", got[0].Ops)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the durable chain is intact and appendable.
	w2 := mustOpen(t, dir)
	defer w2.Close()
	if w2.Head() != 5 {
		t.Fatalf("reopened head %d, want 5", w2.Head())
	}
	appendN(t, w2, 6, 6)
	all, err := w2.Since(0)
	if err != nil || len(all) != 6 {
		t.Fatalf("Since(0) after reopen = %d batches, %v", len(all), err)
	}

	// ReadTail (the read-only path) sees the same batches.
	tail, err := ReadTail(dir, testGraphID, 4)
	if err != nil || len(tail) != 2 || tail[0].Version != 5 {
		t.Fatalf("ReadTail = %+v, %v", tail, err)
	}
}

// TestTornFinalRecordTruncated is the crash-mid-append case: a torn last
// record (partial write, or intact length with corrupt bytes) is detected
// and truncated at open; the surviving prefix replays exactly.
func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []struct {
		name  string
		chop  int64 // bytes removed from the file end
		flip  bool  // corrupt a payload byte instead of chopping
		extra []byte
	}{
		{name: "partial-header", chop: int64(recHdrSize + 3*delta.OpWireBytes + 8)},
		{name: "partial-payload", chop: 5},
		{name: "corrupt-crc", flip: true},
		{name: "garbage-tail", extra: []byte{1, 2, 3}},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, dir)
			appendN(t, w, 1, 4)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segName(0))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case cut.flip:
				raw[len(raw)-3] ^= 0xff
			case cut.extra != nil:
				raw = append(raw, cut.extra...)
			default:
				raw = raw[:int64(len(raw))-cut.chop]
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			w2 := mustOpen(t, dir)
			defer w2.Close()
			wantHead := uint64(3)
			if cut.extra != nil {
				wantHead = 4 // records intact; only trailing garbage dropped
			}
			if w2.Head() != wantHead {
				t.Fatalf("recovered head %d, want %d", w2.Head(), wantHead)
			}
			got, err := w2.Since(0)
			if err != nil || uint64(len(got)) != wantHead {
				t.Fatalf("Since(0) = %d batches, %v", len(got), err)
			}
			// The chain continues from the recovered head, and the repaired
			// file accepts appends cleanly.
			appendN(t, w2, wantHead+1, wantHead+2)
			if got, _ := w2.Since(0); uint64(len(got)) != wantHead+2 {
				t.Fatalf("after repair+append: %d batches", len(got))
			}
		})
	}
}

// TestRotationAndTruncate: segments rotate at the size limit, truncation
// deletes only fully covered segments (never the head), and the retained
// base moves accordingly.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	w.SegmentBytes = 128 // a couple of records per segment
	appendN(t, w, 1, 12)
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if st.Appends != 12 || st.HeadVersion != 12 {
		t.Fatalf("stats %+v", st)
	}

	n := w.TruncateTo(6)
	if n < 1 {
		t.Fatal("truncation released no segments")
	}
	if w.Base() > 6 {
		t.Fatalf("base %d advanced past the floor 6", w.Base())
	}
	// Everything after the floor must still replay.
	got, err := w.Since(6)
	if err != nil || len(got) != 6 || got[0].Version != 7 {
		t.Fatalf("Since(6) after truncate = %d batches, %v", len(got), err)
	}
	// The truncated prefix is gone — an explicit gap, not a short replay.
	if _, err := w.Since(0); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("Since(0) after truncate = %v, want ErrGap", err)
	}
	if _, err := ReadTail(dir, testGraphID, 0); !errors.Is(err, delta.ErrGap) {
		t.Fatalf("ReadTail(0) after truncate = %v, want ErrGap", err)
	}
	w.Close()

	// Reopen after truncation: chain verified from the new base.
	w2 := mustOpen(t, dir)
	defer w2.Close()
	if w2.Head() != 12 {
		t.Fatalf("reopened head %d", w2.Head())
	}
	appendN(t, w2, 13, 13)
}

// TestRebase covers a deployment restored from a checkpoint newer than
// the log (or a fresh log on a checkpointed deployment).
func TestRebase(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	if err := w.Rebase(40); err != nil {
		t.Fatal(err)
	}
	if w.Head() != 40 || w.Base() != 40 {
		t.Fatalf("head=%d base=%d after rebase", w.Head(), w.Base())
	}
	appendN(t, w, 41, 42)
	if err := w.Rebase(10); err == nil {
		t.Fatal("rebase behind head accepted (would discard durable ops)")
	}
	if err := w.Rebase(42); err != nil {
		t.Fatalf("no-op rebase: %v", err)
	}
	w.Close()
	w2 := mustOpen(t, dir)
	defer w2.Close()
	if w2.Head() != 42 || w2.Base() != 40 {
		t.Fatalf("reopened head=%d base=%d", w2.Head(), w2.Base())
	}
}

// TestGraphIDMismatch: a WAL written for another graph must refuse to
// open or replay — silently replaying someone else's ops would corrupt
// the graph.
func TestGraphIDMismatch(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	appendN(t, w, 1, 2)
	w.Close()
	if _, err := Open(dir, testGraphID+1); err == nil {
		t.Fatal("open with wrong graph id accepted")
	}
	if _, err := ReadTail(dir, testGraphID+1, 0); err == nil {
		t.Fatal("ReadTail with wrong graph id accepted")
	}
}

// TestRecoverGraph: snapshot + WAL tail reaches the exact logged head.
func TestRecoverGraph(t *testing.T) {
	dir := t.TempDir()
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	base := b.MustBuild()

	w := mustOpen(t, dir)
	live := delta.NewView(base)
	for v := uint64(1); v <= 6; v++ {
		ops := testOps(2, int(v))
		nv, _, err := live.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		live = nv
		if err := w.Append(v, ops); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// From version 0 (no checkpoint): the whole log replays.
	g, v, err := RecoverGraph(dir, testGraphID, base, 0)
	if err != nil || v != 6 {
		t.Fatalf("RecoverGraph = v%d, %v", v, err)
	}
	if g.NumEdges() != live.NumEdges() || g.NumVertices() != live.NumVertices() {
		t.Fatalf("recovered shape %d/%d, want %d/%d",
			g.NumVertices(), g.NumEdges(), live.NumVertices(), live.NumEdges())
	}

	// From a mid-log checkpoint: only the tail replays, same destination.
	mid, mv, err := RecoverGraph(dir, testGraphID, base, 0)
	_ = mid
	if err != nil || mv != 6 {
		t.Fatal(err)
	}
	snapView, err := delta.ReplayBatchesFrom(base, 0, mustTail(t, dir, 0)[:3])
	if err != nil {
		t.Fatal(err)
	}
	g2, v2, err := RecoverGraph(dir, testGraphID, snapView.Materialize(), 3)
	if err != nil || v2 != 6 {
		t.Fatalf("RecoverGraph from checkpoint = v%d, %v", v2, err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("checkpoint path edges %d, full path %d", g2.NumEdges(), g.NumEdges())
	}

	// A missing directory is an empty tail (fresh deployment).
	g3, v3, err := RecoverGraph(filepath.Join(dir, "nope"), testGraphID, base, 7)
	if err != nil || v3 != 7 || g3 != base {
		t.Fatalf("missing dir: v%d, %v", v3, err)
	}
}

func mustTail(t *testing.T, dir string, from uint64) []delta.LogBatch {
	t.Helper()
	tail, err := ReadTail(dir, testGraphID, from)
	if err != nil {
		t.Fatal(err)
	}
	return tail
}

// TestTornMiddleSegmentDropsLaterOnes: corruption in a non-final segment
// cannot be bridged; open repairs to the longest intact prefix.
func TestTornMiddleSegmentDropsLaterOnes(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	w.SegmentBytes = 128
	appendN(t, w, 1, 12)
	segs := append([]segInfo(nil), w.segs...)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	w.Close()
	// Corrupt the second segment's first record payload.
	raw, err := os.ReadFile(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+recHdrSize+1] ^= 0xff
	if err := os.WriteFile(segs[1].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir)
	defer w2.Close()
	if w2.Head() != segs[0].last {
		t.Fatalf("recovered head %d, want the first segment's last %d", w2.Head(), segs[0].last)
	}
	got, err := w2.Since(0)
	if err != nil || got[len(got)-1].Version != segs[0].last {
		t.Fatalf("Since(0) = %d batches, %v", len(got), err)
	}
	// Later segments are gone from disk, not lurking out of chain.
	left, _ := filepath.Glob(filepath.Join(dir, "wal-*"+fileExt))
	if len(left) != 2 { // repaired seg 0 + truncated-to-header seg 1? no: seg 1 had no good records -> removed, fresh head seg created on append
		// The exact layout depends on repair; what matters is the chain.
		t.Logf("segments on disk after repair: %v", left)
	}
	appendN(t, w2, segs[0].last+1, segs[0].last+1)
}

// TestRotationFailureKeepsAppending: when the next segment cannot be
// created, the old segment must stay open and appendable — a transient
// rotation error costs an oversized segment, never a halted log.
func TestRotationFailureKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir)
	defer w.Close()
	w.SegmentBytes = 64 // rotate on every append
	appendN(t, w, 1, 2)

	// Occupy the name rotation would rename onto (a directory there makes
	// the rename fail), so creating the next segment errors out.
	blocker := filepath.Join(dir, segName(w.Head()))
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	// Rotation fails, but the record still lands durably in the current
	// segment.
	appendN(t, w, 3, 3)
	if w.Stats().AppendErrors == 0 {
		t.Fatal("failed rotation not counted")
	}
	if got, err := w.Since(0); err != nil || len(got) != 3 {
		t.Fatalf("Since(0) = %d batches, %v", len(got), err)
	}

	// Blocker gone: rotation resumes on the next append.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	before := w.Stats().Segments
	appendN(t, w, 4, 4)
	if after := w.Stats().Segments; after <= before {
		t.Fatalf("rotation did not resume (%d -> %d segments)", before, after)
	}
	if got, err := w.Since(0); err != nil || len(got) != 4 {
		t.Fatalf("post-recovery Since(0) = %d batches, %v", len(got), err)
	}
}
