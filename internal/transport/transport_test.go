package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qgraph/internal/graph"
	"qgraph/internal/protocol"
)

// exerciseNetwork sends numbered messages across every ordered node pair
// and verifies complete, per-link-ordered delivery.
func exerciseNetwork(t *testing.T, net Network, msgs int) {
	t.Helper()
	n := net.Nodes()
	type key struct{ from, to protocol.NodeID }
	done := make(chan error, n)

	for to := 0; to < n; to++ {
		to := protocol.NodeID(to)
		go func() {
			lastSeen := map[protocol.NodeID]int32{}
			want := msgs * (n - 1)
			got := 0
			timeout := time.After(20 * time.Second)
			for got < want {
				select {
				case env, ok := <-net.Conn(to).Inbox():
					if !ok {
						done <- fmt.Errorf("node %d: inbox closed after %d/%d", to, got, want)
						return
					}
					b, isB := env.Msg.(*protocol.GlobalStop)
					if !isB {
						done <- fmt.Errorf("node %d: unexpected %T", to, env.Msg)
						return
					}
					if last, ok := lastSeen[env.From]; ok && b.Epoch <= last {
						done <- fmt.Errorf("node %d: out of order from %d: %d after %d", to, env.From, b.Epoch, last)
						return
					}
					lastSeen[env.From] = b.Epoch
					got++
				case <-timeout:
					done <- fmt.Errorf("node %d: timeout after %d/%d", to, got, want)
					return
				}
			}
			done <- nil
		}()
	}

	for from := 0; from < n; from++ {
		from := protocol.NodeID(from)
		go func() {
			for i := 1; i <= msgs; i++ {
				for to := 0; to < n; to++ {
					if protocol.NodeID(to) == from {
						continue
					}
					if err := net.Conn(from).Send(protocol.NodeID(to), &protocol.GlobalStop{Epoch: int32(i)}); err != nil {
						t.Errorf("send %d→%d: %v", from, to, err)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestChanNetworkDelivery exercises the in-process transport without and
// with simulated latency.
func TestChanNetworkDelivery(t *testing.T) {
	net := NewChanNetwork(4, Latency{})
	defer net.Close()
	exerciseNetwork(t, net, 200)
}

func TestChanNetworkLatencyDelivery(t *testing.T) {
	net := NewChanNetwork(3, Latency{
		WorkerWorker:     200 * time.Microsecond,
		WorkerController: 100 * time.Microsecond,
		PerByte:          10 * time.Nanosecond,
	})
	defer net.Close()
	exerciseNetwork(t, net, 50)
}

// TestChanNetworkLatencyOrdering checks that a link delivers no earlier
// than the propagation delay.
func TestChanNetworkLatencyOrdering(t *testing.T) {
	lat := Latency{WorkerWorker: 2 * time.Millisecond, WorkerController: 1 * time.Millisecond}
	net := NewChanNetwork(3, lat)
	defer net.Close()
	start := time.Now()
	if err := net.Conn(1).Send(2, &protocol.GlobalStop{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	<-net.Conn(2).Inbox()
	if el := time.Since(start); el < lat.WorkerWorker {
		t.Fatalf("delivered after %v, want >= %v", el, lat.WorkerWorker)
	}
}

// TestTCPNetworkDelivery exercises the TCP transport end to end.
func TestTCPNetworkDelivery(t *testing.T) {
	net, err := NewTCPNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	exerciseNetwork(t, net, 200)
}

// TestTCPLargeBatch pushes a large vertex batch through TCP.
func TestTCPLargeBatch(t *testing.T) {
	net, err := NewTCPNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	entries := make([]protocol.VertexMsg, 50000)
	for i := range entries {
		entries[i] = protocol.VertexMsg{To: graph.VertexID(i), Val: float64(i) / 3}
	}
	if err := net.Conn(0).Send(1, &protocol.VertexBatch{Q: 1, Step: 2, From: 0, Entries: entries}); err != nil {
		t.Fatal(err)
	}
	env := <-net.Conn(1).Inbox()
	got := env.Msg.(*protocol.VertexBatch)
	if len(got.Entries) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got.Entries), len(entries))
	}
	if got.Entries[49999] != entries[49999] {
		t.Fatalf("entry mismatch: %+v", got.Entries[49999])
	}
}

// TestTCPHandshakeVersionMismatch: a peer announcing a different codec
// version in the dial handshake must be rejected at accept time — its
// frames are never decoded or delivered — while a peer speaking the
// current version on the same node keeps working. This is what turns a
// mixed-version rolling restart into a loud connect-time failure
// instead of silently misdecoded frames.
func TestTCPHandshakeVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:1"}
	n := newTCPNodeWithListener(0, addrs, ln)
	defer n.Close()

	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{CodecVersion + 1, 1}); err != nil {
		t.Fatal(err)
	}
	frame, err := Encode(&protocol.GlobalStop{Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write(frame) // may outrun the close; rejection is observed below

	// The acceptor must close the connection without delivering anything.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection still open (read succeeded)")
	}
	select {
	case env := <-n.Inbox():
		t.Fatalf("frame from mismatched peer delivered: %+v", env)
	default:
	}

	// A well-versioned peer on the same node is unaffected.
	ok, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	if _, err := ok.Write([]byte{CodecVersion, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-n.Inbox():
		if env.From != 1 || env.Msg.(*protocol.GlobalStop).Epoch != 7 {
			t.Fatalf("bad delivery: %+v", env)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("well-versioned frame never delivered")
	}
}

// TestTCPRedialAfterPeerRestart: a process that crashed and came back on
// the same address is reachable again through the same TCPNode — Send
// drops the dead cached connection and redials instead of failing forever.
// This is what lets qgraphd workers restart with -rejoin.
func TestTCPRedialAfterPeerRestart(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	a := newTCPNodeWithListener(0, addrs, lnA)
	defer a.Close()
	b := newTCPNodeWithListener(1, addrs, lnB)

	if err := a.Send(1, &protocol.GlobalStop{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if env := <-b.Inbox(); env.Msg.(*protocol.GlobalStop).Epoch != 1 {
		t.Fatal("first delivery wrong")
	}

	// "Crash" B and restart it on the same address.
	b.Close()
	var lnB2 net.Listener
	for i := 0; ; i++ {
		lnB2, err = net.Listen("tcp", addrs[1])
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addrs[1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b2 := newTCPNodeWithListener(1, addrs, lnB2)
	defer b2.Close()

	// The first send may be swallowed by the dead kernel buffer; within a
	// few attempts the broken peer is evicted and the redial reaches B2.
	got := make(chan struct{})
	go func() {
		env := <-b2.Inbox()
		if env.Msg.(*protocol.GlobalStop).Epoch >= 2 {
			close(got)
		}
	}()
	deadline := time.After(10 * time.Second)
	for i := int32(2); ; i++ {
		_ = a.Send(1, &protocol.GlobalStop{Epoch: i})
		select {
		case <-got:
			return
		case <-deadline:
			t.Fatal("restarted peer never reachable")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestTCPConcurrentSendsDuringPeerRestart: many goroutines race Send to a
// peer that dies and comes back on the same address. The per-peer redial
// serialization must produce exactly one live outbound connection (no
// leaked sockets from racing redials), and the bounded retry must make
// sends succeed again once the restarted listener is up — one transient
// dial failure mid-restart must not permanently fail the path.
func TestTCPConcurrentSendsDuringPeerRestart(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	a := newTCPNodeWithListener(0, addrs, lnA)
	defer a.Close()
	b := newTCPNodeWithListener(1, addrs, lnB)

	if err := a.Send(1, &protocol.GlobalStop{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	<-b.Inbox()
	b.Close()

	// Hammer the dead peer from many goroutines while it restarts.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var okAfterRestart atomic.Int64
	restarted := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := int32(2); ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				err := a.Send(1, &protocol.GlobalStop{Epoch: j})
				select {
				case <-restarted:
					if err == nil {
						okAfterRestart.Add(1)
					}
				default:
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // sends fail and retry against the dead peer

	var lnB2 net.Listener
	for i := 0; ; i++ {
		lnB2, err = net.Listen("tcp", addrs[1])
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addrs[1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	b2 := newTCPNodeWithListener(1, addrs, lnB2)
	defer b2.Close()
	close(restarted)

	// The restarted peer must start receiving, and sends must succeed.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-b2.Inbox():
		case <-deadline:
			t.Fatal("restarted peer never received anything")
		}
		if okAfterRestart.Load() > 0 {
			break
		}
	}
	close(stop)
	wg.Wait()

	// No leaked sockets: the racing redials collapsed to one live conn.
	a.mu.Lock()
	live := len(a.dialed)
	a.mu.Unlock()
	if live > 1 {
		t.Fatalf("%d live outbound connections to one peer (leak)", live)
	}
}
