package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// Binary codec for protocol messages. Frames on the wire are
//
//	[u32 payload length][u8 message type][payload]
//
// with all integers little-endian. The codec is hand-rolled (stdlib only)
// and round-trip tested for every message type.

// CodecVersion identifies the frame encoding generation. Message
// payloads carry no per-frame version; instead peers exchange this
// value in the TCP dial handshake (see TCPNode) and connections from a
// peer speaking a different generation are rejected at accept time, so
// a mixed-version cluster (e.g. mid rolling restart) fails loudly
// instead of silently misdecoding frames.
//
// Bump this whenever any message's wire encoding changes shape.
// History:
//
//	1 — initial encoding (implicit; pre-handshake binaries sent no
//	    version byte and are rejected by the handshake length change)
//	2 — ExecuteQuery gained Spec.TraceID, BarrierSynch gained ComputeNS
//	3 — ExecuteQuery gained Spec.PinVersion (MVCC snapshot pinning)
//
// The value is deliberately offset from small integers so a legacy
// 1-byte [NodeID] handshake can never alias a valid version.
const CodecVersion = 0xA0 + 3

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f32(v float32) { e.u32(math.Float32bits(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// sliceLen reads a length prefix and bounds-checks it against the remaining
// payload (elemSize is the minimum encoded element size) so corrupt frames
// cannot trigger huge allocations.
func (d *decoder) sliceLen(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && (n < 0 || n*elemSize > len(d.buf)-d.off) {
		d.err = fmt.Errorf("transport: slice length %d exceeds payload", n)
		return 0
	}
	return n
}

// Encode serializes m into a frame ready to write to a stream.
func Encode(m protocol.Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 5, 64)} // length + type filled at the end
	switch v := m.(type) {
	case *protocol.ExecuteQuery:
		e.i64(int64(v.Spec.ID))
		e.u8(uint8(v.Spec.Kind))
		e.i32(int32(v.Spec.Source))
		e.i32(int32(v.Spec.Target))
		e.i32(int32(v.Spec.MaxIters))
		e.f64(v.Spec.Epsilon)
		e.u64(v.Spec.TraceID)
		e.u64(v.Spec.PinVersion)
		e.u32(uint32(uint16(v.Spec.HomeWire())))
	case *protocol.BarrierReady:
		e.i64(int64(v.Q))
		e.i32(v.Step)
		e.i32(v.Expect)
		e.bool(v.Solo)
		e.bool(v.Drained)
	case *protocol.QueryFinish:
		e.i64(int64(v.Q))
		e.u8(uint8(v.Reason))
	case *protocol.GlobalStop:
		e.i32(v.Epoch)
	case *protocol.DrainCheck:
		e.i32(v.Epoch)
		e.bool(v.Scope)
		e.u32(uint32(len(v.ExpectRecv)))
		for _, x := range v.ExpectRecv {
			e.u64(x)
		}
	case *protocol.MoveScope:
		e.i32(v.Epoch)
		e.i64(int64(v.Q))
		e.u8(uint8(v.To))
	case *protocol.OwnershipUpdate:
		e.i32(v.Epoch)
		if len(v.Vertices) != len(v.Owners) {
			return nil, fmt.Errorf("transport: ownership update lengths differ")
		}
		e.u32(uint32(len(v.Vertices)))
		for i := range v.Vertices {
			e.i32(int32(v.Vertices[i]))
			e.u8(uint8(v.Owners[i]))
		}
	case *protocol.GlobalStart:
		e.i32(v.Epoch)
	case *protocol.Shutdown:
	case *protocol.BarrierSynch:
		e.i64(int64(v.Q))
		e.u8(uint8(v.W))
		e.i32(v.Step)
		e.i32(v.FromStep)
		e.i32(v.LocalIters)
		e.i32(v.Processed)
		e.i32(v.NActiveNext)
		e.i64(v.ComputeNS)
		e.i32(v.ScopeSize)
		e.u32(uint32(len(v.SentBatches)))
		for _, x := range v.SentBatches {
			e.i32(x)
		}
		e.f64(v.BestGoal)
		e.f64(v.MinFrontier)
		e.u32(uint32(len(v.Intersections)))
		for _, s := range v.Intersections {
			e.i64(int64(s.Q1))
			e.i64(int64(s.Q2))
			e.i32(s.Shared)
		}
		e.bool(v.Finished)
	case *protocol.StopAck:
		e.i32(v.Epoch)
		e.u8(uint8(v.W))
		e.u32(uint32(len(v.SentTotals)))
		for _, x := range v.SentTotals {
			e.u64(x)
		}
	case *protocol.DrainAck:
		e.i32(v.Epoch)
		e.u8(uint8(v.W))
	case *protocol.MoveAck:
		e.i32(v.Epoch)
		e.i64(int64(v.Q))
		e.u8(uint8(v.From))
		e.u8(uint8(v.To))
		e.u32(uint32(len(v.Vertices)))
		for _, x := range v.Vertices {
			e.i32(int32(x))
		}
	case *protocol.VertexBatch:
		e.i64(int64(v.Q))
		e.i32(v.Step)
		e.u8(uint8(v.From))
		e.i32(v.Gen)
		e.u32(uint32(len(v.Entries)))
		for _, en := range v.Entries {
			e.i32(int32(en.To))
			e.f64(en.Val)
		}
	case *protocol.ScopeData:
		e.i32(v.Epoch)
		e.i64(int64(v.Q))
		e.u8(uint8(v.From))
		e.i32(v.Gen)
		e.u32(uint32(len(v.Vertices)))
		for _, mv := range v.Vertices {
			e.i32(int32(mv.V))
			e.u32(uint32(len(mv.Values)))
			for _, qv := range mv.Values {
				e.i64(int64(qv.Q))
				e.f64(qv.Val)
			}
			e.u32(uint32(len(mv.Pending)))
			for _, pm := range mv.Pending {
				e.i64(int64(pm.Q))
				e.i32(pm.Step)
				e.f64(pm.Val)
			}
			e.u32(uint32(len(mv.Finished)))
			for _, fq := range mv.Finished {
				e.i64(int64(fq))
			}
		}
	case *protocol.DeltaBatch:
		e.u64(v.Version)
		e.u32(uint32(len(v.Ops)))
		for _, op := range v.Ops {
			e.u8(uint8(op.Kind))
			e.i32(int32(op.From))
			e.i32(int32(op.To))
			e.f32(op.Weight)
		}
		e.u32(uint32(len(v.NewOwners)))
		for _, o := range v.NewOwners {
			e.u8(uint8(o))
		}
	case *protocol.DeltaAck:
		e.u64(v.Version)
		e.u8(uint8(v.W))
	case *protocol.Ping:
		e.i64(v.Seq)
	case *protocol.Pong:
		e.i64(v.Seq)
		e.u8(uint8(v.W))
	case *protocol.RecoverStart:
		e.i32(v.Gen)
		e.u64(v.Version)
		e.u32(uint32(len(v.Owner)))
		for _, o := range v.Owner {
			e.u8(uint8(o))
		}
	case *protocol.PartitionGrant:
		e.i32(v.Gen)
		e.u64(v.Version)
		e.u64(v.BaseVersion)
		e.u32(uint32(len(v.Owner)))
		for _, o := range v.Owner {
			e.u8(uint8(o))
		}
		e.u32(uint32(len(v.Batches)))
		for _, b := range v.Batches {
			e.u64(b.Version)
			e.u32(uint32(len(b.Ops)))
			for _, op := range b.Ops {
				e.u8(uint8(op.Kind))
				e.i32(int32(op.From))
				e.i32(int32(op.To))
				e.f32(op.Weight)
			}
		}
	case *protocol.WorkerHello:
		e.u8(uint8(v.W))
	case *protocol.PartitionAck:
		e.i32(v.Gen)
		e.u8(uint8(v.W))
		e.u64(v.Version)
	default:
		return nil, fmt.Errorf("transport: cannot encode %T", m)
	}
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(e.buf)-5))
	e.buf[4] = byte(m.Type())
	return e.buf, nil
}

// Decode parses one frame payload (without the length prefix).
func Decode(t protocol.MsgType, payload []byte) (protocol.Message, error) {
	d := &decoder{buf: payload}
	var m protocol.Message
	switch t {
	case protocol.TExecuteQuery:
		v := &protocol.ExecuteQuery{}
		v.Spec.ID = query.ID(d.i64())
		v.Spec.Kind = query.Kind(d.u8())
		v.Spec.Source = graph.VertexID(d.i32())
		v.Spec.Target = graph.VertexID(d.i32())
		v.Spec.MaxIters = int(d.i32())
		v.Spec.Epsilon = d.f64()
		v.Spec.TraceID = d.u64()
		v.Spec.PinVersion = d.u64()
		v.Spec.SetHomeWire(int16(uint16(d.u32())))
		m = v
	case protocol.TBarrierReady:
		v := &protocol.BarrierReady{}
		v.Q = query.ID(d.i64())
		v.Step = d.i32()
		v.Expect = d.i32()
		v.Solo = d.bool()
		v.Drained = d.bool()
		m = v
	case protocol.TQueryFinish:
		v := &protocol.QueryFinish{}
		v.Q = query.ID(d.i64())
		v.Reason = protocol.FinishReason(d.u8())
		m = v
	case protocol.TGlobalStop:
		m = &protocol.GlobalStop{Epoch: d.i32()}
	case protocol.TDrainCheck:
		v := &protocol.DrainCheck{Epoch: d.i32(), Scope: d.bool()}
		if n := d.sliceLen(8); n > 0 {
			v.ExpectRecv = make([]uint64, n)
			for i := range v.ExpectRecv {
				v.ExpectRecv[i] = d.u64()
			}
		}
		m = v
	case protocol.TMoveScope:
		v := &protocol.MoveScope{}
		v.Epoch = d.i32()
		v.Q = query.ID(d.i64())
		v.To = partition.WorkerID(d.u8())
		m = v
	case protocol.TOwnershipUpdate:
		v := &protocol.OwnershipUpdate{Epoch: d.i32()}
		if n := d.sliceLen(5); n > 0 {
			v.Vertices = make([]graph.VertexID, n)
			v.Owners = make([]partition.WorkerID, n)
			for i := 0; i < n; i++ {
				v.Vertices[i] = graph.VertexID(d.i32())
				v.Owners[i] = partition.WorkerID(d.u8())
			}
		}
		m = v
	case protocol.TGlobalStart:
		m = &protocol.GlobalStart{Epoch: d.i32()}
	case protocol.TShutdown:
		m = &protocol.Shutdown{}
	case protocol.TBarrierSynch:
		v := &protocol.BarrierSynch{}
		v.Q = query.ID(d.i64())
		v.W = partition.WorkerID(d.u8())
		v.Step = d.i32()
		v.FromStep = d.i32()
		v.LocalIters = d.i32()
		v.Processed = d.i32()
		v.NActiveNext = d.i32()
		v.ComputeNS = d.i64()
		v.ScopeSize = d.i32()
		if nb := d.sliceLen(4); nb > 0 {
			v.SentBatches = make([]int32, nb)
			for i := range v.SentBatches {
				v.SentBatches[i] = d.i32()
			}
		}
		v.BestGoal = d.f64()
		v.MinFrontier = d.f64()
		ni := d.sliceLen(20)
		if ni > 0 {
			v.Intersections = make([]protocol.IntersectionStat, ni)
			for i := range v.Intersections {
				v.Intersections[i].Q1 = query.ID(d.i64())
				v.Intersections[i].Q2 = query.ID(d.i64())
				v.Intersections[i].Shared = d.i32()
			}
		}
		v.Finished = d.bool()
		m = v
	case protocol.TStopAck:
		v := &protocol.StopAck{}
		v.Epoch = d.i32()
		v.W = partition.WorkerID(d.u8())
		if n := d.sliceLen(8); n > 0 {
			v.SentTotals = make([]uint64, n)
			for i := range v.SentTotals {
				v.SentTotals[i] = d.u64()
			}
		}
		m = v
	case protocol.TDrainAck:
		v := &protocol.DrainAck{}
		v.Epoch = d.i32()
		v.W = partition.WorkerID(d.u8())
		m = v
	case protocol.TMoveAck:
		v := &protocol.MoveAck{}
		v.Epoch = d.i32()
		v.Q = query.ID(d.i64())
		v.From = partition.WorkerID(d.u8())
		v.To = partition.WorkerID(d.u8())
		if n := d.sliceLen(4); n > 0 {
			v.Vertices = make([]graph.VertexID, n)
			for i := range v.Vertices {
				v.Vertices[i] = graph.VertexID(d.i32())
			}
		}
		m = v
	case protocol.TVertexBatch:
		v := &protocol.VertexBatch{}
		v.Q = query.ID(d.i64())
		v.Step = d.i32()
		v.From = partition.WorkerID(d.u8())
		v.Gen = d.i32()
		if n := d.sliceLen(12); n > 0 {
			v.Entries = make([]protocol.VertexMsg, n)
			for i := range v.Entries {
				v.Entries[i].To = graph.VertexID(d.i32())
				v.Entries[i].Val = d.f64()
			}
		}
		m = v
	case protocol.TScopeData:
		v := &protocol.ScopeData{}
		v.Epoch = d.i32()
		v.Q = query.ID(d.i64())
		v.From = partition.WorkerID(d.u8())
		v.Gen = d.i32()
		n := d.sliceLen(12)
		v.Vertices = make([]protocol.MovedVertex, n)
		for i := range v.Vertices {
			v.Vertices[i].V = graph.VertexID(d.i32())
			if nv := d.sliceLen(16); nv > 0 {
				v.Vertices[i].Values = make([]protocol.QueryValue, nv)
				for j := range v.Vertices[i].Values {
					v.Vertices[i].Values[j].Q = query.ID(d.i64())
					v.Vertices[i].Values[j].Val = d.f64()
				}
			}
			np := d.sliceLen(20)
			if np > 0 {
				v.Vertices[i].Pending = make([]protocol.PendingMsg, np)
				for j := range v.Vertices[i].Pending {
					v.Vertices[i].Pending[j].Q = query.ID(d.i64())
					v.Vertices[i].Pending[j].Step = d.i32()
					v.Vertices[i].Pending[j].Val = d.f64()
				}
			}
			nf := d.sliceLen(8)
			if nf > 0 {
				v.Vertices[i].Finished = make([]query.ID, nf)
				for j := range v.Vertices[i].Finished {
					v.Vertices[i].Finished[j] = query.ID(d.i64())
				}
			}
		}
		m = v
	case protocol.TDeltaBatch:
		v := &protocol.DeltaBatch{Version: d.u64()}
		if n := d.sliceLen(13); n > 0 {
			v.Ops = make([]delta.Op, n)
			for i := range v.Ops {
				v.Ops[i].Kind = delta.OpKind(d.u8())
				v.Ops[i].From = graph.VertexID(d.i32())
				v.Ops[i].To = graph.VertexID(d.i32())
				v.Ops[i].Weight = d.f32()
			}
		}
		if n := d.sliceLen(1); n > 0 {
			v.NewOwners = make([]partition.WorkerID, n)
			for i := range v.NewOwners {
				v.NewOwners[i] = partition.WorkerID(d.u8())
			}
		}
		m = v
	case protocol.TDeltaAck:
		v := &protocol.DeltaAck{}
		v.Version = d.u64()
		v.W = partition.WorkerID(d.u8())
		m = v
	case protocol.TPing:
		m = &protocol.Ping{Seq: d.i64()}
	case protocol.TPong:
		v := &protocol.Pong{}
		v.Seq = d.i64()
		v.W = partition.WorkerID(d.u8())
		m = v
	case protocol.TRecoverStart:
		v := &protocol.RecoverStart{}
		v.Gen = d.i32()
		v.Version = d.u64()
		if n := d.sliceLen(1); n > 0 {
			v.Owner = make([]partition.WorkerID, n)
			for i := range v.Owner {
				v.Owner[i] = partition.WorkerID(d.u8())
			}
		}
		m = v
	case protocol.TPartitionGrant:
		v := &protocol.PartitionGrant{}
		v.Gen = d.i32()
		v.Version = d.u64()
		v.BaseVersion = d.u64()
		if n := d.sliceLen(1); n > 0 {
			v.Owner = make([]partition.WorkerID, n)
			for i := range v.Owner {
				v.Owner[i] = partition.WorkerID(d.u8())
			}
		}
		if nb := d.sliceLen(12); nb > 0 {
			v.Batches = make([]delta.LogBatch, nb)
			for i := range v.Batches {
				v.Batches[i].Version = d.u64()
				if n := d.sliceLen(13); n > 0 {
					v.Batches[i].Ops = make([]delta.Op, n)
					for j := range v.Batches[i].Ops {
						v.Batches[i].Ops[j].Kind = delta.OpKind(d.u8())
						v.Batches[i].Ops[j].From = graph.VertexID(d.i32())
						v.Batches[i].Ops[j].To = graph.VertexID(d.i32())
						v.Batches[i].Ops[j].Weight = d.f32()
					}
				}
			}
		}
		m = v
	case protocol.TWorkerHello:
		m = &protocol.WorkerHello{W: partition.WorkerID(d.u8())}
	case protocol.TPartitionAck:
		v := &protocol.PartitionAck{}
		v.Gen = d.i32()
		v.W = partition.WorkerID(d.u8())
		v.Version = d.u64()
		m = v
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("transport: %d trailing bytes in %d frame", len(payload)-d.off, t)
	}
	return m, nil
}

// WireSize estimates the encoded size of m without encoding it; the
// simulated network uses it for transmission-time accounting.
func WireSize(m protocol.Message) int {
	const hdr = 5
	switch v := m.(type) {
	case *protocol.VertexBatch:
		return hdr + 21 + 12*len(v.Entries)
	case *protocol.ScopeData:
		n := hdr + 21
		for _, mv := range v.Vertices {
			n += 16 + 16*len(mv.Values) + 20*len(mv.Pending) + 8*len(mv.Finished)
		}
		return n
	case *protocol.RecoverStart:
		return hdr + 16 + len(v.Owner)
	case *protocol.PartitionGrant:
		n := hdr + 28 + len(v.Owner)
		for _, b := range v.Batches {
			n += int(delta.BatchWireBytes(len(b.Ops)))
		}
		return n
	case *protocol.BarrierSynch:
		return hdr + 63 + 4*len(v.SentBatches) + 20*len(v.Intersections)
	case *protocol.OwnershipUpdate:
		return hdr + 8 + 5*len(v.Vertices)
	case *protocol.MoveAck:
		return hdr + 18 + 4*len(v.Vertices)
	case *protocol.DrainCheck:
		return hdr + 9 + 8*len(v.ExpectRecv)
	case *protocol.StopAck:
		return hdr + 9 + 8*len(v.SentTotals)
	case *protocol.ExecuteQuery:
		return hdr + 41
	case *protocol.DeltaBatch:
		// Batch framing + ops (the shared batch encoding) plus the
		// owner-list length prefix and owners.
		return hdr + int(delta.BatchWireBytes(len(v.Ops))) + 4 + len(v.NewOwners)
	default:
		return hdr + 16
	}
}
