package transport

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
)

// roundTrip encodes m, splits the frame, decodes, and compares deeply.
func roundTrip(t *testing.T, m protocol.Message) {
	t.Helper()
	frame, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	if len(frame) < 5 {
		t.Fatalf("frame too short: %d", len(frame))
	}
	got, err := Decode(protocol.MsgType(frame[4]), frame[5:])
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if !reflect.DeepEqual(normalize(m), normalize(got)) {
		t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
	}
}

// normalize maps nil slices to empty ones so DeepEqual compares content.
func normalize(m protocol.Message) protocol.Message {
	switch v := m.(type) {
	case *protocol.BarrierSynch:
		c := *v
		if c.SentBatches == nil {
			c.SentBatches = []int32{}
		}
		if c.Intersections == nil {
			c.Intersections = []protocol.IntersectionStat{}
		}
		return &c
	case *protocol.DrainCheck:
		c := *v
		if c.ExpectRecv == nil {
			c.ExpectRecv = []uint64{}
		}
		return &c
	case *protocol.DeltaBatch:
		c := *v
		if c.Ops == nil {
			c.Ops = []delta.Op{}
		}
		if c.NewOwners == nil {
			c.NewOwners = []partition.WorkerID{}
		}
		return &c
	case *protocol.RecoverStart:
		c := *v
		if c.Owner == nil {
			c.Owner = []partition.WorkerID{}
		}
		return &c
	case *protocol.PartitionGrant:
		c := *v
		if c.Owner == nil {
			c.Owner = []partition.WorkerID{}
		}
		if c.Batches == nil {
			c.Batches = []delta.LogBatch{}
		}
		for i := range c.Batches {
			if c.Batches[i].Ops == nil {
				c.Batches[i].Ops = []delta.Op{}
			}
		}
		return &c
	}
	return m
}

func sampleMessages() []protocol.Message {
	spec := query.Spec{
		ID: 42, Kind: query.KindSSSP, Source: 7, Target: graph.NilVertex,
		MaxIters: 100, Epsilon: 1e-9, TraceID: 0xDEADBEEFCAFE,
		PinVersion: 0x1122334455667788,
	}
	pinned := spec
	pinned.SetHome(3)
	return []protocol.Message{
		&protocol.ExecuteQuery{Spec: spec},
		&protocol.ExecuteQuery{Spec: pinned},
		&protocol.BarrierReady{Q: 42, Step: 17, Expect: 3, Solo: true, Drained: false},
		&protocol.BarrierReady{Q: 1, Step: 0},
		&protocol.QueryFinish{Q: 9, Reason: protocol.FinishEarly},
		&protocol.GlobalStop{Epoch: 12},
		&protocol.DrainCheck{Epoch: 12, ExpectRecv: []uint64{0, 5, math.MaxUint64}},
		&protocol.DrainCheck{Epoch: 13, Scope: true, ExpectRecv: []uint64{1}},
		&protocol.MoveScope{Epoch: 12, Q: 5, To: 3},
		&protocol.OwnershipUpdate{Epoch: 12, Vertices: []graph.VertexID{1, 2, 3}, Owners: []partition.WorkerID{0, 1, 2}},
		&protocol.GlobalStart{Epoch: 12},
		&protocol.Shutdown{},
		&protocol.BarrierSynch{
			Q: 42, W: 2, Step: 17, FromStep: 12, LocalIters: 5,
			Processed: 100, NActiveNext: 3, ComputeNS: 1234567, ScopeSize: 500,
			SentBatches: []int32{0, 2, 0, 1},
			BestGoal:    123.5, MinFrontier: query.NoResult,
			Intersections: []protocol.IntersectionStat{{Q1: 1, Q2: 2, Shared: 7}},
			Finished:      true,
		},
		&protocol.BarrierSynch{Q: 1, W: 0, BestGoal: query.NoResult, MinFrontier: query.NoResult},
		&protocol.StopAck{Epoch: 12, W: 1, SentTotals: []uint64{9, 0, 4}},
		&protocol.DrainAck{Epoch: 12, W: 3},
		&protocol.MoveAck{Epoch: 12, Q: 5, From: 1, To: 3, Vertices: []graph.VertexID{10, 20}},
		&protocol.MoveAck{Epoch: 12, Q: 6, From: 0, To: 2},
		&protocol.VertexBatch{
			Q: 42, Step: 3, From: 1, Gen: 5,
			Entries: []protocol.VertexMsg{{To: 5, Val: 1.5}, {To: 9, Val: math.Inf(1)}},
		},
		&protocol.DeltaBatch{
			Version: 3,
			Ops: []delta.Op{
				{Kind: delta.OpAddEdge, From: 1, To: 2, Weight: 1.5},
				{Kind: delta.OpRemoveEdge, From: 2, To: 1},
				{Kind: delta.OpSetWeight, From: 0, To: 1, Weight: 0.25},
				{Kind: delta.OpAddVertex},
			},
			NewOwners: []partition.WorkerID{2},
		},
		&protocol.DeltaBatch{Version: 1},
		&protocol.DeltaAck{Version: 3, W: 2},
		&protocol.Ping{Seq: 99},
		&protocol.Pong{Seq: 99, W: 1},
		&protocol.ScopeData{
			Epoch: 12, Q: 5, From: 1, Gen: 2,
			Vertices: []protocol.MovedVertex{
				{
					V:        77,
					Values:   []protocol.QueryValue{{Q: 5, Val: 2.5}, {Q: 6, Val: 0}},
					Pending:  []protocol.PendingMsg{{Q: 5, Step: 4, Val: 3.25}},
					Finished: []query.ID{8, 9},
				},
				{V: 78},
			},
		},
		&protocol.RecoverStart{Gen: 3, Version: 7, Owner: []partition.WorkerID{0, 2, 2, 0}},
		&protocol.RecoverStart{Gen: 1},
		&protocol.PartitionGrant{
			Gen: 4, Version: 2, BaseVersion: 0, Owner: []partition.WorkerID{1, 1, 0},
			Batches: []delta.LogBatch{
				{Version: 1, Ops: []delta.Op{{Kind: delta.OpAddEdge, From: 0, To: 2, Weight: 2.5}}},
				{Version: 2, Ops: []delta.Op{{Kind: delta.OpAddVertex}, {Kind: delta.OpRemoveEdge, From: 1, To: 0}}},
			},
		},
		&protocol.PartitionGrant{Gen: 2, Version: 0},
		&protocol.PartitionGrant{
			Gen: 5, Version: 9, BaseVersion: 7, Owner: []partition.WorkerID{0, 1},
			Batches: []delta.LogBatch{
				{Version: 8, Ops: []delta.Op{{Kind: delta.OpSetWeight, From: 1, To: 0, Weight: 4}}},
				{Version: 9, Ops: []delta.Op{{Kind: delta.OpAddVertex}}},
			},
		},
		&protocol.WorkerHello{W: 3},
		&protocol.PartitionAck{Gen: 4, W: 3, Version: 2},
	}
}

// TestCodecRoundTrip round-trips every message type byte-exactly.
func TestCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		roundTrip(t, m)
	}
}

// TestCodecWireSizeMatches checks the WireSize estimate used for the
// latency simulation against the real encoded size.
func TestCodecWireSizeMatches(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		est := WireSize(m)
		// Fixed-size estimates may be a few bytes off for small control
		// messages; bulk messages must be within 10%.
		diff := est - len(frame)
		if diff < 0 {
			diff = -diff
		}
		if diff > 16 && float64(diff) > 0.1*float64(len(frame)) {
			t.Errorf("%T: WireSize %d vs encoded %d", m, est, len(frame))
		}
	}
}

// TestCodecRejectsCorrupt checks the decoder fails cleanly on truncated
// and oversized payloads instead of panicking or over-allocating.
func TestCodecRejectsCorrupt(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		payload := frame[5:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := Decode(protocol.MsgType(frame[4]), payload[:cut]); err == nil {
				// Some prefixes of list-bearing messages decode by chance
				// only if they are exactly a valid shorter message — for
				// the fixed-layout types any cut must fail.
				switch m.(type) {
				case *protocol.Shutdown:
				default:
					t.Errorf("%T: decode succeeded on %d/%d byte prefix", m, cut, len(payload))
				}
			}
		}
	}
	if _, err := Decode(protocol.MsgType(200), nil); err == nil {
		t.Errorf("unknown type decoded")
	}
}

// TestCodecPropertyRandomBatches round-trips randomly generated vertex
// batches, including NaN/Inf payloads, via testing/quick.
func TestCodecPropertyRandomBatches(t *testing.T) {
	f := func(q int64, step int32, from uint8, tos []int32, vals []float64) bool {
		n := min(len(tos), len(vals))
		b := &protocol.VertexBatch{
			Q: query.ID(q), Step: step, From: partition.WorkerID(from),
		}
		for i := 0; i < n; i++ {
			b.Entries = append(b.Entries, protocol.VertexMsg{
				To: graph.VertexID(tos[i]), Val: vals[i],
			})
		}
		frame, err := Encode(b)
		if err != nil {
			return false
		}
		got, err := Decode(protocol.MsgType(frame[4]), frame[5:])
		if err != nil {
			return false
		}
		gb := got.(*protocol.VertexBatch)
		if gb.Q != b.Q || gb.Step != b.Step || gb.From != b.From || len(gb.Entries) != len(b.Entries) {
			return false
		}
		for i := range gb.Entries {
			if gb.Entries[i].To != b.Entries[i].To {
				return false
			}
			// Compare bit patterns so NaN round-trips count as equal.
			if math.Float64bits(gb.Entries[i].Val) != math.Float64bits(b.Entries[i].Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
