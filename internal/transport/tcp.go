package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/protocol"
)

// TCPNode is one node of a TCP-connected Q-Graph deployment. Frames are the
// codec frames of this package; each node dials its peers lazily and
// accepts inbound connections, so deployments need no start-up ordering
// beyond "listeners up before traffic".
//
// The dial handshake is two bytes: [CodecVersion][dialer's NodeID]. The
// acceptor drops connections whose version byte differs from its own
// CodecVersion, so peers built from binaries with incompatible frame
// encodings are rejected at connect time (the dialer's Sends then fail
// with connection errors) rather than misdecoding each other's frames.
type TCPNode struct {
	id    protocol.NodeID
	addrs []string // addrs[n] is node n's listen address
	ln    net.Listener

	mu       sync.Mutex
	peers    map[protocol.NodeID]*tcpPeer
	dialed   map[net.Conn]bool // live outbound conns, for teardown
	accepted []net.Conn

	inbox  chan Envelope
	inQ    *queue
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// tcpPeer is the send-side state for one destination. Its mutex owns both
// the connection lifecycle (dial, drop, redial) and the frame writes, so
// concurrent Sends to one dead peer serialize: exactly one goroutine
// redials while the others wait and then reuse the fresh connection —
// never two racing dials leaking a socket. A dial to peer A never blocks
// sends to peer B (the node-level mutex only guards the peer map).
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
}

// NewTCPNode starts node id listening on addrs[id]. addrs lists every
// node's address (index = NodeID).
func NewTCPNode(id protocol.NodeID, addrs []string) (*TCPNode, error) {
	if int(id) >= len(addrs) {
		return nil, fmt.Errorf("transport: node %d not in address list (len %d)", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	return newTCPNodeWithListener(id, addrs, ln), nil
}

func newTCPNodeWithListener(id protocol.NodeID, addrs []string, ln net.Listener) *TCPNode {
	n := &TCPNode{
		id:     id,
		addrs:  addrs,
		ln:     ln,
		peers:  make(map[protocol.NodeID]*tcpPeer),
		dialed: make(map[net.Conn]bool),
		inbox:  make(chan Envelope, 256),
		inQ:    newQueue(),
		closed: make(chan struct{}),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.pump()
	return n
}

// Addr returns the actual listen address (useful with ":0" ports in tests).
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

func (n *TCPNode) pump() {
	defer n.wg.Done()
	defer close(n.inbox)
	for {
		it, ok := n.inQ.pop()
		if !ok {
			return
		}
		n.inbox <- it.env
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		select {
		case <-n.closed:
			n.mu.Unlock()
			conn.Close()
			return
		default:
		}
		n.accepted = append(n.accepted, conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
		}()
	}
}

// serveConn reads the handshake then pushes decoded frames into the inbox.
func (n *TCPNode) serveConn(conn net.Conn) {
	defer conn.Close()
	var hs [2]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	if hs[0] != CodecVersion {
		slog.Warn("transport: rejecting peer with incompatible codec version",
			"remote", conn.RemoteAddr().String(),
			"peer_version", hs[0], "local_version", uint8(CodecVersion))
		if fn := onCodecReject.Load(); fn != nil {
			(*fn)(conn.RemoteAddr().String(), hs[0], CodecVersion)
		}
		return
	}
	from := protocol.NodeID(hs[1])
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		m, err := readFrame(br)
		if err != nil {
			return
		}
		if !n.inQ.push(queueItem{env: Envelope{From: from, Msg: m}}) {
			return
		}
	}
}

// onCodecReject is an optional process-wide tap on handshake rejects
// (the health layer's event log registers here); atomic so late
// registration cannot race running accept goroutines.
var onCodecReject atomic.Pointer[func(remote string, peerVersion, localVersion uint8)]

// SetOnCodecReject installs a callback invoked whenever an acceptor
// drops a peer over a codec-version mismatch. Pass nil to clear.
func SetOnCodecReject(fn func(remote string, peerVersion, localVersion uint8)) {
	if fn == nil {
		onCodecReject.Store(nil)
		return
	}
	onCodecReject.Store(&fn)
}

func readFrame(r io.Reader) (protocol.Message, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	if length > 1<<28 {
		return nil, fmt.Errorf("transport: oversized frame %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return Decode(protocol.MsgType(head[4]), payload)
}

// slot returns the per-peer send slot, creating it on first use. The slot
// persists across connection failures; only its connection churns.
func (n *TCPNode) slot(to protocol.NodeID) (*tcpPeer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[to]; ok {
		return p, nil
	}
	if int(to) >= len(n.addrs) {
		return nil, fmt.Errorf("transport: unknown node %d", to)
	}
	p := &tcpPeer{}
	n.peers[to] = p
	return p, nil
}

// registerDialed tracks a live outbound connection for teardown; it
// refuses (and closes the conn) when the node is already closing, so no
// dial can race past Close.
func (n *TCPNode) registerDialed(conn net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.closed:
		conn.Close()
		return false
	default:
	}
	n.dialed[conn] = true
	return true
}

func (n *TCPNode) unregisterDialed(conn net.Conn) {
	n.mu.Lock()
	delete(n.dialed, conn)
	n.mu.Unlock()
}

// Send retry schedule: a dead connection or a failed dial is retried a
// bounded number of times with a short backoff, so one transient failure
// during a peer's restart (listener briefly down between the crash and
// the -rejoin relaunch) does not permanently fail the send. The schedule
// is deliberately tight (≤ ~30ms of sleep, worst case): callers send
// from event loops, and a genuinely dead peer must fail fast enough not
// to stall barrier progress while liveness detection runs.
const (
	sendAttempts = 3
	sendBackoff  = 10 * time.Millisecond
)

// Send implements Conn. Frames are written synchronously to the socket
// buffer and flushed immediately; the kernel provides the async pipe.
//
// A write failure drops the connection and redials, bounded by the retry
// schedule: a restarted process on the same address (a worker brought
// back with -rejoin after a crash) is reachable again on the very next
// frame, instead of every future send failing against the dead
// connection. Frames buffered on the broken connection are lost — exactly
// the semantics of a crashed peer — and the recovery protocol's
// generation fencing makes that safe. Per-peer state is lock-serialized,
// so concurrent Sends to one dead peer produce one redial, not a race of
// leaked sockets.
func (n *TCPNode) Send(to protocol.NodeID, m protocol.Message) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	p, err := n.slot(to)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < sendAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-n.closed:
				return lastErr
			case <-time.After(time.Duration(attempt) * sendBackoff):
			}
		}
		if p.conn == nil {
			conn, err := net.Dial("tcp", n.addrs[to])
			if err != nil {
				lastErr = fmt.Errorf("transport: dial node %d (%s): %w", to, n.addrs[to], err)
				continue
			}
			if !n.registerDialed(conn) {
				return fmt.Errorf("transport: node closed")
			}
			if _, err := conn.Write([]byte{CodecVersion, byte(n.id)}); err != nil {
				n.unregisterDialed(conn)
				conn.Close()
				lastErr = err
				continue
			}
			p.conn, p.bw = conn, bufio.NewWriterSize(conn, 1<<16)
		}
		_, werr := p.bw.Write(frame)
		if werr == nil {
			werr = p.bw.Flush()
		}
		if werr == nil {
			return nil
		}
		n.unregisterDialed(p.conn)
		p.conn.Close()
		p.conn, p.bw = nil, nil
		lastErr = werr
	}
	return lastErr
}

// Inbox implements Conn.
func (n *TCPNode) Inbox() <-chan Envelope { return n.inbox }

// Close implements Conn.
func (n *TCPNode) Close() error {
	n.once.Do(func() {
		close(n.closed)
		n.ln.Close()
		n.mu.Lock()
		// Close live outbound conns via the registry rather than the peer
		// slots: slot state is owned by in-flight Sends, which observe the
		// closed channel and the dying sockets and bail out.
		for c := range n.dialed {
			c.Close()
		}
		for _, c := range n.accepted {
			c.Close()
		}
		n.mu.Unlock()
		n.inQ.close()
	})
	n.wg.Wait()
	return nil
}

var _ Conn = (*TCPNode)(nil)

// TCPNetwork bundles in-process TCPNodes into a Network, used by tests and
// by single-machine multi-process-less TCP runs (the paper's loopback-TCP
// scale-up configuration M1/M2).
type TCPNetwork struct {
	nodes []*TCPNode
}

// NewTCPNetwork starts n nodes on loopback with ephemeral ports: listeners
// are bound first so every node knows all final addresses before anyone
// dials.
func NewTCPNetwork(n int) (*TCPNetwork, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*TCPNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = newTCPNodeWithListener(protocol.NodeID(i), append([]string(nil), addrs...), listeners[i])
	}
	return &TCPNetwork{nodes: nodes}, nil
}

// Conn implements Network.
func (t *TCPNetwork) Conn(n protocol.NodeID) Conn { return t.nodes[n] }

// Nodes implements Network.
func (t *TCPNetwork) Nodes() int { return len(t.nodes) }

// Close implements Network.
func (t *TCPNetwork) Close() error {
	var first error
	for _, n := range t.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ Network = (*TCPNetwork)(nil)
