package transport

import (
	"fmt"
	"sync"
	"time"

	"qgraph/internal/protocol"
)

// Latency models the simulated network of the in-process transport.
// A message of wire size s sent from a to b is delivered at
//
//	max(sendTime + Propagation(a,b), previousDeliveryOnLink) + s * PerByte
//
// i.e. links are FIFO pipes with propagation delay and finite bandwidth.
// The zero value is a perfect network (instant delivery), which unit tests
// use; experiments use Default() so that remote communication has the cost
// whose removal Q-cut's locality is worth measuring.
type Latency struct {
	// WorkerWorker is the one-way propagation delay between workers.
	WorkerWorker time.Duration
	// WorkerController is the one-way delay worker ↔ controller; a barrier
	// round-trip costs twice this.
	WorkerController time.Duration
	// PerByte is the transmission time per wire byte (inverse bandwidth).
	PerByte time.Duration
}

// DefaultLatency returns the simulated network used by the experiments:
// 250µs propagation (same-rack Ethernet scale), ~1 Gbit/s bandwidth.
func DefaultLatency() Latency {
	return Latency{
		WorkerWorker:     250 * time.Microsecond,
		WorkerController: 125 * time.Microsecond,
		PerByte:          8 * time.Nanosecond, // ≈ 1 Gbit/s
	}
}

// Zero reports whether the model is the perfect network.
func (l Latency) Zero() bool {
	return l.WorkerWorker == 0 && l.WorkerController == 0 && l.PerByte == 0
}

func (l Latency) propagation(a, b protocol.NodeID) time.Duration {
	if a == protocol.ControllerNode || b == protocol.ControllerNode {
		return l.WorkerController
	}
	return l.WorkerWorker
}

// ChanNetwork is the in-process transport: per-link FIFO queues drained by
// delivery goroutines that enforce the latency model.
type ChanNetwork struct {
	latency Latency
	conns   []*chanConn
	links   []*queue // links[from*n+to]
	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
}

type chanConn struct {
	net   *ChanNetwork
	id    protocol.NodeID
	inbox chan Envelope
	inQ   *queue // local unbounded buffer feeding inbox
}

// NewChanNetwork creates an in-process network with n nodes (node 0 is the
// controller) under the given latency model.
func NewChanNetwork(n int, lat Latency) *ChanNetwork {
	cn := &ChanNetwork{
		latency: lat,
		conns:   make([]*chanConn, n),
		links:   make([]*queue, n*n),
		closed:  make(chan struct{}),
	}
	for i := range cn.conns {
		c := &chanConn{
			net:   cn,
			id:    protocol.NodeID(i),
			inbox: make(chan Envelope, 256),
			inQ:   newQueue(),
		}
		cn.conns[i] = c
		// Pump: unbounded buffer → bounded inbox channel, so senders never
		// block on slow receivers. The send selects on network close so a
		// crashed node that stopped reading its inbox (worker failure
		// testing) cannot wedge Close behind a full channel.
		cn.wg.Add(1)
		go func() {
			defer cn.wg.Done()
			defer close(c.inbox)
			for {
				it, ok := c.inQ.pop()
				if !ok {
					return
				}
				select {
				case c.inbox <- it.env:
				case <-cn.closed:
					return
				}
			}
		}()
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			q := newQueue()
			cn.links[from*n+to] = q
			cn.wg.Add(1)
			go cn.deliver(protocol.NodeID(from), protocol.NodeID(to), q)
		}
	}
	return cn
}

// deliver drains one link, sleeping per the latency model before handing
// envelopes to the destination buffer.
func (cn *ChanNetwork) deliver(from, to protocol.NodeID, q *queue) {
	defer cn.wg.Done()
	prop := cn.latency.propagation(from, to)
	var lastDeliver time.Time
	for {
		it, ok := q.pop()
		if !ok {
			return
		}
		if !cn.latency.Zero() {
			arrive := time.Unix(0, it.sentAt).Add(prop)
			if arrive.Before(lastDeliver) {
				arrive = lastDeliver
			}
			arrive = arrive.Add(time.Duration(it.size) * cn.latency.PerByte)
			if d := time.Until(arrive); d > 0 {
				time.Sleep(d)
			}
			lastDeliver = arrive
		}
		cn.conns[to].inQ.push(it)
	}
}

// Conn implements Network.
func (cn *ChanNetwork) Conn(n protocol.NodeID) Conn { return cn.conns[n] }

// Nodes implements Network.
func (cn *ChanNetwork) Nodes() int { return len(cn.conns) }

// Close implements Network.
func (cn *ChanNetwork) Close() error {
	cn.once.Do(func() {
		close(cn.closed)
		for _, q := range cn.links {
			if q != nil {
				q.close()
			}
		}
		for _, c := range cn.conns {
			c.inQ.close()
		}
	})
	cn.wg.Wait()
	return nil
}

// Send implements Conn.
func (c *chanConn) Send(to protocol.NodeID, m protocol.Message) error {
	if int(to) >= len(c.net.conns) || to == c.id {
		return fmt.Errorf("transport: bad destination %d", to)
	}
	q := c.net.links[int(c.id)*len(c.net.conns)+int(to)]
	it := queueItem{
		env:    Envelope{From: c.id, Msg: m},
		sentAt: time.Now().UnixNano(),
		size:   WireSize(m),
	}
	if !q.push(it) {
		return fmt.Errorf("transport: network closed")
	}
	return nil
}

// Inbox implements Conn.
func (c *chanConn) Inbox() <-chan Envelope { return c.inbox }

// Close implements Conn. Closing one endpoint of the in-process network is
// a no-op; use Network.Close.
func (c *chanConn) Close() error { return nil }

var _ Network = (*ChanNetwork)(nil)
