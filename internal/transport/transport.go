// Package transport moves protocol messages between the controller and the
// workers. Two implementations are provided:
//
//   - ChanNetwork: in-process, channel-based, with a configurable simulated
//     network (propagation latency + transmission time). The paper's
//     scale-up experiments run k partitions on one machine over loopback
//     TCP; the simulated network makes the communication costs that
//     Q-cut removes explicit and deterministic (DESIGN.md §3).
//   - TCPNetwork: real TCP with length-prefixed binary frames, used by
//     cmd/qgraphd for genuine scale-out deployments.
//
// Both deliver messages in order per (sender, receiver) link and never
// block senders (unbounded per-link queues), which the barrier protocol
// relies on.
package transport

import (
	"sync"

	"qgraph/internal/protocol"
)

// Envelope is a received message with its sender.
type Envelope struct {
	From protocol.NodeID
	Msg  protocol.Message
}

// Conn is one node's endpoint: asynchronous ordered sends plus an inbox.
type Conn interface {
	// Send enqueues m for delivery to node `to`. It never blocks; delivery
	// is ordered per destination.
	Send(to protocol.NodeID, m protocol.Message) error
	// Inbox returns the stream of received envelopes. It is closed when
	// the connection closes.
	Inbox() <-chan Envelope
	// Close releases the endpoint.
	Close() error
}

// Network is a set of connected nodes (node 0 = controller, i+1 = worker i).
type Network interface {
	// Conn returns node n's endpoint.
	Conn(n protocol.NodeID) Conn
	// Nodes returns the number of nodes.
	Nodes() int
	// Close shuts the whole network down.
	Close() error
}

// queue is an unbounded FIFO with close semantics. Senders never block;
// the reader drains via a goroutine pumping into a channel.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queueItem
	closed bool
}

type queueItem struct {
	env    Envelope
	sentAt int64 // nanoseconds, for the latency simulation
	size   int   // wire size estimate
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(it queueItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return true
}

// pop blocks until an item is available or the queue closes (ok=false).
func (q *queue) pop() (queueItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return queueItem{}, false
	}
	it := q.items[0]
	// Shift; reclaim the backing array periodically to bound memory.
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil
	}
	return it, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
