package faultpoint

import (
	"sync"
	"testing"
)

func TestUnarmedHitIsFalse(t *testing.T) {
	if Hit("worker/superstep", 0) {
		t.Fatal("unarmed point fired")
	}
}

func TestArmDisarm(t *testing.T) {
	defer Reset()
	calls := 0
	disarm := Arm("p", func(args ...int) bool {
		calls++
		return args[0] == 7
	})
	if Hit("p", 3) {
		t.Fatal("hook fired for non-matching args")
	}
	if !Hit("p", 7) {
		t.Fatal("hook did not fire for matching args")
	}
	disarm()
	disarm() // idempotent
	if Hit("p", 7) {
		t.Fatal("disarmed hook fired")
	}
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
}

func TestMultipleHooksFireInOrder(t *testing.T) {
	defer Reset()
	var order []int
	Arm("p", func(...int) bool { order = append(order, 1); return false })
	Arm("p", func(...int) bool { order = append(order, 2); return true })
	Arm("p", func(...int) bool { order = append(order, 3); return true })
	if !Hit("p") {
		t.Fatal("no hook fired")
	}
	// The third hook must not run: the second already fired.
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hook order %v, want [1 2]", order)
	}
}

func TestKillOnce(t *testing.T) {
	defer Reset()
	fired, disarm := KillOnce("p", 2)
	defer disarm()
	if Hit("p", 1) {
		t.Fatal("fired for wrong worker")
	}
	if !Hit("p", 2) {
		t.Fatal("did not fire for worker 2")
	}
	select {
	case <-fired:
	default:
		t.Fatal("fired channel not closed")
	}
	if Hit("p", 2) {
		t.Fatal("fired twice")
	}
}

func TestConcurrentHitAndArm(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				Hit("p", j)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				disarm := Arm("p", func(...int) bool { return false })
				disarm()
			}
		}()
	}
	wg.Wait()
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after all disarms", armed.Load())
	}
}
