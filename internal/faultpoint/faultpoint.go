// Package faultpoint is a deterministic fault-injection seam: named points
// in the execution of a component (worker supersteps, barrier acks, delta
// commits, recovery itself) call Hit, and tests arm hooks that decide —
// from the point's context arguments — whether the fault fires there.
//
// In production nothing is armed and Hit is a single atomic load, so the
// seam costs nothing on the hot path. Tests arm hooks to kill a specific
// worker at a specific point (making every recovery path reproducible
// under `go test -race`), to delay a worker, or to count passages.
package faultpoint

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Worker-side points. The first context argument of Hit at each of these
// is the worker id.
const (
	// WorkerSuperstep fires after a superstep's compute, before its
	// BarrierSynch report — a worker dying with work done but unreported.
	WorkerSuperstep = "worker/superstep"
	// WorkerBarrierStop fires on GlobalStop before the StopAck — a worker
	// dying mid-global-barrier, wedging the STOP round.
	WorkerBarrierStop = "worker/barrier-stop"
	// WorkerDeltaApply fires on DeltaBatch before applying — the worker
	// dies with the batch unapplied.
	WorkerDeltaApply = "worker/delta-apply"
	// WorkerDeltaAck fires on DeltaBatch after applying, before the
	// DeltaAck — the nasty case: the batch is applied on this replica but
	// the controller never learns it.
	WorkerDeltaAck = "worker/delta-ack"
	// WorkerRecover fires on RecoverStart before the reset — a worker
	// dying during recovery itself, forcing a second recovery round.
	WorkerRecover = "worker/recover"
	// WorkerComputeSlow fires inside a superstep's timed compute section:
	// a hook that sleeps and returns false models a straggling worker
	// whose reported ComputeNS inflates deterministically, exercising the
	// health layer's straggler detector.
	WorkerComputeSlow = "worker/compute-slow"
)

// Controller-side checkpointing points (internal/snapshot). These carry no
// context arguments.
const (
	// SnapshotCut fires after the checkpoint's graph is materialized,
	// before it reaches the store — the cut is lost, the log untouched.
	SnapshotCut = "snapshot/cut"
	// SnapshotPersist fires inside the durable write, between the temp
	// file's bytes and the rename — the snapshot exists in memory but not
	// on disk, so the truncation floor must not advance.
	SnapshotPersist = "snapshot/persist"
	// WALAppend fires after a committed batch was durably appended
	// (fsynced) to the write-ahead log but before the commit barrier
	// acknowledged it to the mutation's caller — the at-least-once edge:
	// a restart must recover the batch even though nobody was told it
	// committed.
	WALAppend = "wal/append"
)

// ErrKilled is the sentinel a component returns when an armed point told
// it to die. Harnesses treat it as an injected crash, not a failure.
var ErrKilled = errors.New("faultpoint: killed")

// Hook decides whether the fault fires at a point; args carry the point's
// context (for worker points, args[0] is the worker id). Hooks run on the
// component's goroutine and may sleep to simulate slowness, returning
// false to let execution continue.
type Hook func(args ...int) bool

type entry struct {
	id int64
	h  Hook
}

var (
	armed  atomic.Int32
	mu     sync.Mutex
	nextID int64
	hooks  = map[string][]entry{}
)

// Hit reports whether an armed hook fired at the named point. With nothing
// armed anywhere it is one atomic load.
func Hit(name string, args ...int) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	es := append([]entry(nil), hooks[name]...)
	mu.Unlock()
	for _, e := range es {
		if e.h(args...) {
			return true
		}
	}
	return false
}

// Arm registers a hook at the named point and returns its disarm func.
// Multiple hooks may be armed at one point; they fire in arm order.
func Arm(name string, h Hook) (disarm func()) {
	mu.Lock()
	nextID++
	id := nextID
	hooks[name] = append(hooks[name], entry{id: id, h: h})
	mu.Unlock()
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			es := hooks[name]
			for i, e := range es {
				if e.id == id {
					hooks[name] = append(es[:i:i], es[i+1:]...)
					break
				}
			}
			if len(hooks[name]) == 0 {
				delete(hooks, name)
			}
			mu.Unlock()
			armed.Add(-1)
		})
	}
}

// KillOnce arms the named point to fire exactly once when args[0] equals
// worker. The returned channel closes when the kill fired.
func KillOnce(name string, worker int) (fired <-chan struct{}, disarm func()) {
	ch := make(chan struct{})
	var once sync.Once
	d := Arm(name, func(args ...int) bool {
		if len(args) == 0 || args[0] != worker {
			return false
		}
		hit := false
		once.Do(func() {
			close(ch)
			hit = true
		})
		return hit
	})
	return ch, d
}

// Reset disarms every point (test cleanup).
func Reset() {
	mu.Lock()
	n := 0
	for _, es := range hooks {
		n += len(es)
	}
	hooks = map[string][]entry{}
	mu.Unlock()
	armed.Add(int32(-n))
}
