package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"qgraph/internal/obs"
	"qgraph/internal/obs/fleet"
	"qgraph/internal/obs/health"
)

// This file is the router's observability plane: its own metric
// instruments (qgraph_router_* families, per-upstream), its health-event
// ring, the stitched GET /trace/{id} view, and the /fleet/* aggregation
// endpoints powered by internal/obs/fleet.

// Router-side health event types, filterable via /events?type=.
const (
	EventRouterFailover     = "event_router_failover"
	EventReplicaEvicted     = "event_replica_evicted"
	EventReplicaReentered   = "event_replica_reentered"
	EventPrimaryUnreachable = "event_primary_unreachable"
	EventPrimaryRecovered   = "event_primary_recovered"
)

// servedRingSize bounds the traceID→serving-upstream memory backing
// trace stitching (matches the tracer's completed ring, which bounds
// how many traces are fetchable anyway).
const servedRingSize = obs.DefaultTraceRing

// registerMetrics wires the router's instruments into its registry:
// aggregate routing counters, per-upstream request/failover/eviction/
// re-entry counters, probe latency histograms, and per-replica
// staleness-lag gauges.
func (r *Router) registerMetrics() {
	m := r.obs.M()
	r.reqCtr = make(map[string]*obs.Counter)
	r.foCtr = make(map[string]*obs.Counter)
	r.evictCtr = make(map[string]*obs.Counter)
	r.reenterCtr = make(map[string]*obs.Counter)
	r.probeHist = make(map[string]*obs.Histogram)
	if m == nil {
		return
	}
	m.CounterFunc("qgraph_router_reads_replica_total", "", "reads served by a replica",
		func() float64 { return float64(r.readsReplica.Load()) })
	m.CounterFunc("qgraph_router_reads_primary_total", "", "reads served by the primary (fallback or empty rotation)",
		func() float64 { return float64(r.readsPrimary.Load()) })
	m.CounterFunc("qgraph_router_writes_total", "", "writes and admin requests forwarded to the primary",
		func() float64 { return float64(r.writes.Load()) })
	m.CounterFunc("qgraph_router_failovers_all_total", "", "failed upstream attempts that failed over (all upstreams)",
		func() float64 { return float64(r.failovers.Load()) })
	m.GaugeFunc("qgraph_router_primary_healthy", "", "1 when the primary answers its health probe",
		func() float64 {
			if r.primaryHealthy.Load() {
				return 1
			}
			return 0
		})
	r.scrapeErrors = m.Counter("qgraph_fleet_scrape_errors_total", "",
		"fleet metric scrapes that failed (one per unreachable node per scrape)")

	upstream := func(base, role string) {
		lbl := fmt.Sprintf("upstream=%q", base)
		r.reqCtr[base] = m.Counter("qgraph_router_requests_total",
			lbl, "requests attempted against this upstream")
		r.foCtr[base] = m.Counter("qgraph_router_failovers_total",
			lbl, "attempts against this upstream that failed and failed over")
		r.probeHist[base] = m.Histogram("qgraph_router_probe_seconds",
			lbl, "health probe latency per upstream", nil)
		if role != "replica" {
			return
		}
		r.evictCtr[base] = m.Counter("qgraph_router_evictions_total",
			lbl, "times this replica left the read rotation")
		r.reenterCtr[base] = m.Counter("qgraph_router_reentries_total",
			lbl, "times this replica re-entered the read rotation after an eviction")
	}
	upstream(r.cfg.Primary, "primary")
	for _, rs := range r.replicas {
		rs := rs
		upstream(rs.url, "replica")
		lbl := fmt.Sprintf("upstream=%q", rs.url)
		m.GaugeFunc("qgraph_router_replica_lag_versions", lbl,
			"versions this replica trails the primary's committed head by", func() float64 {
				p, a := r.primaryVersion.Load(), rs.applied.Load()
				if p > a {
					return float64(p - a)
				}
				return 0
			})
		m.GaugeFunc("qgraph_router_replica_in_rotation", lbl,
			"1 when this replica is eligible for reads right now", func() float64 {
				if r.inRotation(rs, r.primaryVersion.Load()) {
					return 1
				}
				return 0
			})
		m.CounterFunc("qgraph_router_replica_served_total", lbl,
			"reads this replica served through the router", func() float64 {
				return float64(rs.served.Load())
			})
	}
}

// event appends one entry to the router's health-event ring.
func (r *Router) event(sev health.Severity, typ, msg, upstream string, fields map[string]any) {
	if fields == nil {
		fields = map[string]any{}
	}
	fields["upstream"] = upstream
	r.events.Append(health.Event{
		At:       time.Now(),
		Type:     typ,
		Severity: sev,
		Msg:      msg,
		Worker:   -1,
		Fields:   fields,
	})
}

// recordServed remembers which upstream served a traced read (bounded
// ring; the stitching fetch in serveTrace looks it up by trace ID).
func (r *Router) recordServed(traceID uint64, url, role string) {
	r.servedMu.Lock()
	r.servedRing[r.servedNext] = servedEntry{traceID: traceID, url: url, role: role}
	r.servedNext = (r.servedNext + 1) % len(r.servedRing)
	if r.servedN < len(r.servedRing) {
		r.servedN++
	}
	r.servedMu.Unlock()
}

// lookupServed finds the newest served entry for traceID.
func (r *Router) lookupServed(traceID uint64) (servedEntry, bool) {
	r.servedMu.Lock()
	defer r.servedMu.Unlock()
	for i := r.servedN - 1; i >= 0; i-- {
		e := r.servedRing[(r.servedNext-r.servedN+i+len(r.servedRing))%len(r.servedRing)]
		if e.traceID == traceID {
			return e, true
		}
	}
	return servedEntry{}, false
}

// errorJSON writes a one-field error body.
func errorJSON(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// serveMetrics renders the router's own registry in Prometheus text
// format.
func (r *Router) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	r.obs.M().WritePrometheus(bw)
	_ = bw.Flush()
}

// serveEvents lists the router's health events newest-first, with the
// same filters the serving nodes support (?type=, ?severity=, ?n=).
func (r *Router) serveEvents(w http.ResponseWriter, req *http.Request) {
	f := health.EventFilter{Type: req.URL.Query().Get("type")}
	switch sev := req.URL.Query().Get("severity"); sev {
	case "", "info":
	case "warn":
		f.MinSeverity = health.SevWarn
	case "critical":
		f.MinSeverity = health.SevCritical
	default:
		errorJSON(w, http.StatusBadRequest, "bad severity (want info|warn|critical)")
		return
	}
	if raw := req.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad n")
			return
		}
		f.Limit = n
	}
	events := r.events.List(f)
	if events == nil {
		events = []health.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": events})
}

// ---------------------------------------------------------------------------
// Stitched traces

// stitchedTrace is the router's GET /trace/{id} body: the route-side
// span tree with the serving node's tree grafted under the attempt that
// served, plus the phase attribution of the whole.
type stitchedTrace struct {
	Trace  obs.TraceView    `json:"trace"`
	Phases []obs.PhaseShare `json:"phases"`
	// ServedBy names the upstream whose spans were stitched in; Stitched
	// is false when the downstream fetch failed (the router half still
	// renders — partial truth over no truth).
	ServedBy string `json:"served_by,omitempty"`
	Stitched bool   `json:"stitched"`
}

// downstreamTrace mirrors the serving node's /trace/by-id response.
type downstreamTrace struct {
	Trace obs.TraceView `json:"trace"`
}

// serveTrace answers GET /trace/{id} for router trace IDs: the local
// route trace with the downstream tree (fetched from whichever node
// served the request) grafted under the serving attempt span. Unknown
// IDs — node-local query ids, /trace/by-id/... — fall through to the
// primary, preserving the pre-fleet proxy behavior.
func (r *Router) serveTrace(w http.ResponseWriter, req *http.Request) {
	raw := strings.TrimPrefix(req.URL.Path, "/trace/")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		r.forward(w, req, nil)
		return
	}
	v, ok := r.obs.T().GetByTraceID(id)
	if !ok {
		r.forward(w, req, nil)
		return
	}
	out := stitchedTrace{Trace: v}
	if e, found := r.lookupServed(id); found {
		out.ServedBy = e.url
		if down, err := r.fetchDownstream(e.url, id); err == nil {
			tagInstance(&down, nodeName(e.url), e.role)
			out.Stitched = graft(&out.Trace, e.url, down)
		}
	}
	out.Phases = obs.Attribute(out.Trace)
	writeJSON(w, http.StatusOK, out)
}

// fetchDownstream pulls the serving node's half of a stitched trace.
func (r *Router) fetchDownstream(base string, id uint64) (obs.SpanView, error) {
	resp, err := r.probeClient.Get(fmt.Sprintf("%s/trace/by-id/%d", base, id))
	if err != nil {
		return obs.SpanView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.SpanView{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var dt downstreamTrace
	if err := json.NewDecoder(resp.Body).Decode(&dt); err != nil {
		return obs.SpanView{}, err
	}
	return dt.Trace.Root, nil
}

// tagInstance marks a grafted subtree's root with where it ran.
func tagInstance(s *obs.SpanView, instance, role string) {
	if s.Attrs == nil {
		s.Attrs = map[string]any{}
	}
	s.Attrs["instance"] = instance
	s.Attrs["role"] = role
}

// graft attaches the downstream span tree under the newest attempt span
// that hit the serving upstream (falling back to a root child when no
// attempt matches — the trace still renders whole).
func graft(v *obs.TraceView, upstream string, down obs.SpanView) bool {
	for i := len(v.Root.Children) - 1; i >= 0; i-- {
		c := &v.Root.Children[i]
		if u, _ := c.Attrs["upstream"].(string); u == upstream {
			c.Children = append(c.Children, down)
			return true
		}
	}
	v.Root.Children = append(v.Root.Children, down)
	return true
}

// ---------------------------------------------------------------------------
// Fleet aggregation

// nodeName is the instance label for an upstream: its base URL minus
// the scheme (labels stay readable; the scheme carries no identity).
func nodeName(base string) string {
	name := strings.TrimPrefix(base, "http://")
	return strings.TrimPrefix(name, "https://")
}

// fleetNodes lists every upstream as a fleet scrape target.
func (r *Router) fleetNodes() []fleet.Node {
	nodes := make([]fleet.Node, 0, 1+len(r.replicas))
	nodes = append(nodes, fleet.Node{Name: nodeName(r.cfg.Primary), Role: "primary", Base: r.cfg.Primary})
	for _, rs := range r.replicas {
		nodes = append(nodes, fleet.Node{Name: nodeName(rs.url), Role: "replica", Base: rs.url})
	}
	return nodes
}

// fleetStatusResponse is the GET /fleet/status body: one row per
// upstream plus the router's own identity and rotation policy.
type fleetStatusResponse struct {
	Router               string             `json:"router"`
	Status               string             `json:"status"` // the router's own verdict
	PrimaryVersion       uint64             `json:"primary_version"`
	MaxStalenessVersions uint64             `json:"max_staleness_versions"`
	Nodes                []fleet.NodeStatus `json:"nodes"`
}

// serveFleetStatus fans /healthz out to every upstream and reports one
// document: role, reachability, applied version, and lag per node, with
// the router's rotation verdict overlaid on replica rows.
func (r *Router) serveFleetStatus(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := fleet.Deadline(req.Context(), 0)
	defer cancel()
	rows := fleet.FetchStatus(ctx, r.probeClient, r.fleetNodes())
	primaryV := r.primaryVersion.Load()
	inRotation := 0
	for i := range rows {
		if rows[i].Role != "replica" {
			continue
		}
		for _, rs := range r.replicas {
			if nodeName(rs.url) == rows[i].Instance {
				rot := r.inRotation(rs, primaryV)
				rows[i].InRotation = &rot
				if rot {
					inRotation++
				}
				break
			}
		}
	}
	// The same verdict /healthz serves: the fleet document must not say
	// "ok" while the router itself reports degraded.
	status := "ok"
	if !r.primaryHealthy.Load() || (len(r.replicas) > 0 && inRotation == 0) {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, fleetStatusResponse{
		Router:               r.cfg.SelfName,
		Status:               status,
		PrimaryVersion:       primaryV,
		MaxStalenessVersions: r.cfg.MaxStalenessVersions,
		Nodes:                rows,
	})
}

// serveFleetMetrics scrapes every upstream's /metrics concurrently and
// re-emits the union as one page, each series labeled with its
// instance and role — the router's own series included. A node that
// fails to answer costs one qgraph_fleet_scrape_errors_total increment
// and its series; everything else still renders.
func (r *Router) serveFleetMetrics(w http.ResponseWriter, req *http.Request) {
	agg := fleet.NewMetricsAgg()
	ctx, cancel := fleet.Deadline(req.Context(), 0)
	defer cancel()
	agg.Scrape(ctx, r.probeClient, r.fleetNodes())
	if agg.Errors > 0 {
		r.scrapeErrors.Add(int64(agg.Errors))
		r.log.Warn("router: fleet scrape incomplete", "failed_nodes", agg.FailedNodes)
	}
	// Render the router's own registry after the fan-out so this very
	// response already carries the scrape errors it just counted.
	var self bytes.Buffer
	r.obs.M().WritePrometheus(&self)
	agg.Add(fleet.Node{Name: r.cfg.SelfName, Role: "router"}, self.Bytes())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = agg.WriteTo(w)
}

// serveFleetEvents merges every upstream's health events with the
// router's own ring into one time-ordered (newest first) bounded log.
func (r *Router) serveFleetEvents(w http.ResponseWriter, req *http.Request) {
	limit := 100
	if raw := req.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad n")
			return
		}
		limit = n
	}
	ctx, cancel := fleet.Deadline(req.Context(), 0)
	defer cancel()
	merged, errs := fleet.FetchEvents(ctx, r.probeClient, r.fleetNodes(), limit)
	for _, e := range r.events.List(health.EventFilter{Limit: limit}) {
		merged = append(merged, fleet.Event{Instance: r.cfg.SelfName, Role: "router", Event: e})
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].At.After(merged[j].At) })
	if len(merged) > limit {
		merged = merged[:limit]
	}
	if merged == nil {
		merged = []fleet.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": merged, "fetch_errors": errs})
}
