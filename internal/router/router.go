// Package router is the read-path front door of a replicated Q-Graph
// deployment: one primary (writes, admin, reads of last resort) and N
// read replicas tailing the primary's WAL. The router health-checks every
// node, round-robins read traffic over the replicas that are close enough
// to the primary's committed version, and sends everything that must not
// land on a follower — POST /mutate, /admin/*, and reads demanding a
// version no replica has reached — to the primary.
//
// Staleness policy: a replica leaves the read rotation when its applied
// version trails the primary's by more than MaxStalenessVersions, or when
// it has been continuously behind for longer than MaxStaleness. It
// re-enters automatically once it catches up — eviction is a per-request
// predicate over the latest health probe, not a sticky state.
//
// Failover: a read that cannot reach its chosen replica (connection
// error, 5xx, or a 412 staleness miss that slipped past the pre-check)
// is retried on the next candidate and finally on the primary, so a
// replica dying mid-request costs a retry, not a client-visible failure.
//
// With Affinity on, reads are pinned to a replica by a stable hash of
// the request instead of round-robin, sharding the query population —
// and therefore the result caches — across the fleet.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qgraph/internal/obs"
	"qgraph/internal/obs/health"
)

// maxBufferedBody bounds how much of a request body the router buffers
// for replay across failover candidates. Query and mutation bodies are
// small; anything larger is forwarded once, to the primary, unbuffered.
const maxBufferedBody = 1 << 20

// Config parameterises a Router.
type Config struct {
	// Primary is the primary's base URL (scheme://host:port).
	Primary string
	// Replicas are the replica base URLs.
	Replicas []string
	// MaxStalenessVersions evicts a replica whose applied version trails
	// the primary by more than this many commits (0 = default 64).
	MaxStalenessVersions uint64
	// MaxStaleness evicts a replica continuously behind the primary for
	// longer than this (0 = no time bound).
	MaxStaleness time.Duration
	// Affinity routes each read to the replica chosen by a stable hash of
	// the request (URI + body) instead of round-robin. Each replica then
	// serves — and caches — a stable shard of the query population, so N
	// replicas provide N× aggregate result-cache instead of N copies of
	// the same hot set. Failover still walks the remaining candidates in
	// rotation order, then the primary.
	Affinity bool
	// HealthEvery is the probe interval (default 250ms).
	HealthEvery time.Duration
	// Client performs upstream requests. The default timeout is 60s —
	// deliberately above the serving nodes' own query deadline, so an
	// overloaded-but-alive replica answers (or 504s) on its own terms
	// instead of being misread as dead and failed over, dumping its
	// cache-warmed shard onto a colder node.
	Client *http.Client
	Logger *slog.Logger
	// Obs is the router's own observability substrate: the tracer each
	// routed read records its hop spans into, the registry /metrics
	// serves (qgraph_router_* families), and the structured logger. Nil
	// creates a private one — the endpoints always work.
	Obs *obs.Obs
	// NoTrace disables per-request route tracing while keeping /metrics,
	// /events, and the /fleet endpoints alive (used to measure the
	// propagation overhead). Inbound trace IDs are still propagated
	// downstream so node-side tracing keeps working.
	NoTrace bool
	// SelfName is the instance label the router reports itself under on
	// the /fleet views (default "router").
	SelfName string
}

// replicaState is the router's live view of one replica, refreshed by
// the health loop and read lock-free on the request path.
type replicaState struct {
	url         string
	healthy     atomic.Bool
	applied     atomic.Uint64
	behindSince atomic.Int64 // unix ns when this replica fell behind; 0 = caught up
	served      atomic.Int64
	// rotState is the probe loop's edge detector for eviction/re-entry
	// accounting: rotUnknown until the first probe, then rotIn/rotOut.
	// Only in→out counts as an eviction and out→in as a re-entry — the
	// initial entry at startup is neither.
	rotState atomic.Int32
}

const (
	rotUnknown int32 = iota
	rotIn
	rotOut
)

// Router fronts the deployment; it is an http.Handler.
type Router struct {
	cfg    Config
	client *http.Client
	// probeClient keeps /healthz probes on a short leash independent of
	// the (long) forwarding timeout: a hung node must leave the rotation
	// in seconds even while in-flight reads are allowed to take longer.
	probeClient *http.Client
	log         *slog.Logger
	replicas    []*replicaState

	primaryVersion atomic.Uint64
	primaryHealthy atomic.Bool
	primarySeen    atomic.Bool // suppresses a health-edge event on the first probe
	rr             atomic.Uint64

	readsReplica atomic.Int64
	readsPrimary atomic.Int64
	writes       atomic.Int64
	failovers    atomic.Int64

	// Observability plane: the router's own tracer (route spans), event
	// ring, and metric instruments keyed by upstream base URL.
	obs          *obs.Obs
	tracer       *obs.Tracer // nil when NoTrace
	events       *health.EventLog
	reqCtr       map[string]*obs.Counter
	foCtr        map[string]*obs.Counter
	evictCtr     map[string]*obs.Counter
	reenterCtr   map[string]*obs.Counter
	probeHist    map[string]*obs.Histogram
	scrapeErrors *obs.Counter

	// servedBy remembers which upstream actually served each traced
	// read, so GET /trace/{id} knows where to fetch the downstream half
	// of the stitched tree. Bounded ring, same retention shape as the
	// tracer's.
	servedMu   sync.Mutex
	servedRing []servedEntry
	servedNext int
	servedN    int

	stop chan struct{}
	done chan struct{}
}

// servedEntry is one routed read's serving upstream, keyed by trace ID.
type servedEntry struct {
	traceID uint64
	url     string
	role    string
}

// New builds a router and starts its health loop.
func New(cfg Config) (*Router, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("router: primary URL required")
	}
	if cfg.MaxStalenessVersions == 0 {
		cfg.MaxStalenessVersions = 64
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(nil)
	}
	if cfg.SelfName == "" {
		cfg.SelfName = "router"
	}
	r := &Router{
		cfg:         cfg,
		client:      cfg.Client,
		probeClient: &http.Client{Timeout: 2 * time.Second},
		log:         cfg.Logger.With("role", "router"),
		obs:         cfg.Obs,
		events:      health.NewEventLog(0),
		servedRing:  make([]servedEntry, servedRingSize),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if !cfg.NoTrace {
		r.tracer = cfg.Obs.T()
	}
	for _, u := range cfg.Replicas {
		r.replicas = append(r.replicas, &replicaState{url: strings.TrimRight(u, "/")})
	}
	r.cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	r.registerMetrics()
	r.probeAll() // populate before serving so the first request routes sanely
	go r.healthLoop()
	return r, nil
}

// Close stops the health loop.
func (r *Router) Close() {
	close(r.stop)
	<-r.done
}

func (r *Router) healthLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.probeAll()
	}
}

// healthzView is the subset of the nodes' /healthz the router consumes.
type healthzView struct {
	Status         string `json:"status"`
	GraphVersion   uint64 `json:"graph_version"`
	AppliedVersion uint64 `json:"applied_version"`
}

// probeAll refreshes the primary's committed version and every replica's
// applied version in one pass, then runs the rotation edge detector:
// in→out is an eviction, out→in a re-entry, each counted per upstream
// and recorded on the event ring.
func (r *Router) probeAll() {
	if hv, err := r.probe(r.cfg.Primary); err == nil {
		healthy := hv.Status == "ok" || hv.Status == "recovering"
		if r.primaryHealthy.Swap(healthy) != healthy && r.primarySeen.Load() {
			if healthy {
				r.event(health.SevInfo, EventPrimaryRecovered,
					"primary reachable again", r.cfg.Primary, nil)
			} else {
				r.event(health.SevCritical, EventPrimaryUnreachable,
					"primary reports "+hv.Status, r.cfg.Primary, nil)
			}
		}
		r.primaryVersion.Store(hv.GraphVersion)
	} else {
		if r.primaryHealthy.Swap(false) && r.primarySeen.Load() {
			r.event(health.SevCritical, EventPrimaryUnreachable,
				"primary probe failed: "+err.Error(), r.cfg.Primary, nil)
		}
	}
	r.primarySeen.Store(true)
	primaryV := r.primaryVersion.Load()
	now := time.Now().UnixNano()
	for _, rs := range r.replicas {
		hv, err := r.probe(rs.url)
		if err != nil {
			if rs.healthy.Swap(false) {
				r.log.Warn("router: replica unhealthy", "replica", rs.url, "error", err)
			}
			r.observeRotation(rs, primaryV)
			continue
		}
		applied := hv.AppliedVersion
		if applied == 0 {
			applied = hv.GraphVersion
		}
		rs.applied.Store(applied)
		if applied >= primaryV {
			rs.behindSince.Store(0)
		} else {
			rs.behindSince.CompareAndSwap(0, now)
		}
		if !rs.healthy.Swap(hv.Status == "ok") && hv.Status == "ok" {
			r.log.Info("router: replica in rotation", "replica", rs.url, "applied_version", applied)
		}
		r.observeRotation(rs, primaryV)
	}
}

// observeRotation runs one replica through the eviction/re-entry edge
// detector against the rotation predicate's current verdict.
func (r *Router) observeRotation(rs *replicaState, primaryV uint64) {
	state := rotOut
	if r.inRotation(rs, primaryV) {
		state = rotIn
	}
	prev := rs.rotState.Swap(state)
	switch {
	case prev == rotIn && state == rotOut:
		if c := r.evictCtr[rs.url]; c != nil {
			c.Inc()
		}
		lag := uint64(0)
		if a := rs.applied.Load(); primaryV > a {
			lag = primaryV - a
		}
		r.event(health.SevWarn, EventReplicaEvicted,
			"replica left the read rotation", rs.url,
			map[string]any{"lag_versions": lag, "healthy": rs.healthy.Load()})
	case prev == rotOut && state == rotIn:
		if c := r.reenterCtr[rs.url]; c != nil {
			c.Inc()
		}
		r.event(health.SevInfo, EventReplicaReentered,
			"replica re-entered the read rotation", rs.url,
			map[string]any{"applied_version": rs.applied.Load()})
	}
}

func (r *Router) probe(base string) (healthzView, error) {
	var hv healthzView
	started := time.Now()
	resp, err := r.probeClient.Get(base + "/healthz")
	if h := r.probeHist[base]; h != nil {
		h.Observe(time.Since(started).Seconds())
	}
	if err != nil {
		return hv, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&hv); err != nil {
		return hv, err
	}
	return hv, nil
}

// inRotation decides whether a replica may serve reads right now.
func (r *Router) inRotation(rs *replicaState, primaryV uint64) bool {
	if !rs.healthy.Load() {
		return false
	}
	applied := rs.applied.Load()
	if primaryV > applied && primaryV-applied > r.cfg.MaxStalenessVersions {
		return false
	}
	if r.cfg.MaxStaleness > 0 {
		if since := rs.behindSince.Load(); since != 0 &&
			time.Since(time.Unix(0, since)) > r.cfg.MaxStaleness {
			return false
		}
	}
	return true
}

// candidates returns the replicas eligible for this read, honoring an
// explicit ?min_version= floor. Order is round-robin, or anchored at the
// request's affinity shard when Affinity is on — the remaining candidates
// keep serving as the failover chain either way.
func (r *Router) candidates(minVersion, key uint64) []*replicaState {
	n := len(r.replicas)
	if n == 0 {
		return nil
	}
	primaryV := r.primaryVersion.Load()
	start := int(r.rr.Add(1))
	if r.cfg.Affinity {
		start = int(key % uint64(n))
	}
	out := make([]*replicaState, 0, n)
	for i := 0; i < n; i++ {
		rs := r.replicas[(start+i)%n]
		if !r.inRotation(rs, primaryV) {
			continue
		}
		if minVersion > 0 && rs.applied.Load() < minVersion {
			continue
		}
		out = append(out, rs)
	}
	return out
}

// ServeHTTP routes one request.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	switch {
	case path == "/healthz" || path == "/router/status":
		r.serveStatus(w)
	case path == "/metrics":
		// The router's own instruments — no longer proxied to the
		// primary; /fleet/metrics is the aggregate view.
		r.serveMetrics(w)
	case path == "/events":
		r.serveEvents(w, req)
	case path == "/fleet/status":
		r.serveFleetStatus(w, req)
	case path == "/fleet/metrics":
		r.serveFleetMetrics(w, req)
	case path == "/fleet/events":
		r.serveFleetEvents(w, req)
	case strings.HasPrefix(path, "/trace/"):
		// A router trace ID stitches local + downstream spans; anything
		// else (a node-local query id, /trace/by-id/...) falls through to
		// the primary.
		r.serveTrace(w, req)
	case path == "/mutate" || strings.HasPrefix(path, "/admin/"):
		// Writes and admin never touch a follower.
		r.writes.Add(1)
		r.forward(w, req, nil)
	case path == "/query":
		r.serveRead(w, req)
	default:
		// Remaining introspection (/stats, /traces, /slo...) reads the
		// primary: one source of truth for operators; replicas expose
		// their own endpoints directly for per-node diagnosis.
		r.forward(w, req, nil)
	}
}

// serveRead forwards a read to the best replica, failing over across the
// remaining candidates and finally the primary. Each read records a
// route trace: candidate selection, one span per upstream attempt, and
// the trace ID is propagated downstream so the serving node's spans
// land in the same tree (GET /trace/{id} stitches the halves).
func (r *Router) serveRead(w http.ResponseWriter, req *http.Request) {
	var minVersion uint64
	if raw := req.URL.Query().Get("min_version"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, `{"error":"bad min_version"}`, http.StatusBadRequest)
			return
		}
		minVersion = v
	}
	body, ok := r.bufferBody(w, req)
	if !ok {
		return
	}
	var key uint64
	if r.cfg.Affinity {
		h := fnv.New64a()
		_, _ = io.WriteString(h, req.URL.RequestURI())
		_, _ = h.Write(body)
		key = h.Sum64()
	}
	// Honor an inbound trace ID (a client correlating its own tree);
	// normally the router originates the ID here.
	var inbound uint64
	if raw := req.Header.Get(obs.TraceHeader); raw != "" {
		if v, err := strconv.ParseUint(raw, 10, 64); err == nil {
			inbound = v
		}
	}
	tr := r.tracer.BeginWithID("route", inbound)
	traceID := tr.ID()
	if traceID == 0 {
		traceID = inbound // NoTrace: still propagate the client's ID
	}
	if tr != nil {
		tr.Root().SetAttr("path", req.URL.Path)
		if minVersion > 0 {
			tr.Root().SetAttr("min_version", minVersion)
		}
	}
	if traceID != 0 {
		// Stamped before forwarding: the client learns the ID even when
		// the response streams or the request fails downstream.
		w.Header().Set(obs.TraceHeader, strconv.FormatUint(traceID, 10))
	}

	candSpan := tr.StartSpan(nil, "candidates")
	cands := r.candidates(minVersion, key)
	candSpan.SetAttr("eligible", len(cands))
	candSpan.SetAttr("replicas", len(r.replicas))
	candSpan.End()

	servedURL, servedRole := r.forwardBody(w, req, body, cands, tr, traceID)
	if tr != nil {
		if servedURL != "" {
			tr.Root().SetAttr("served_by", servedURL)
			tr.Root().SetAttr("served_role", servedRole)
		}
		r.tracer.Finish(tr)
	}
	if traceID != 0 && servedURL != "" {
		r.recordServed(traceID, servedURL, servedRole)
	}
}

// bufferBody drains the (bounded) request body so it can be replayed
// across failover attempts. A false return means the error response has
// already been written.
func (r *Router) bufferBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	if req.Body == nil {
		return nil, true
	}
	b, err := io.ReadAll(io.LimitReader(req.Body, maxBufferedBody+1))
	req.Body.Close()
	if err != nil {
		http.Error(w, `{"error":"reading request body"}`, http.StatusBadRequest)
		return nil, false
	}
	if len(b) > maxBufferedBody {
		http.Error(w, `{"error":"request body too large"}`, http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return b, true
}

// forward buffers the body, then relays as forwardBody does (untraced:
// writes and proxied introspection).
func (r *Router) forward(w http.ResponseWriter, req *http.Request, cands []*replicaState) {
	body, ok := r.bufferBody(w, req)
	if !ok {
		return
	}
	r.forwardBody(w, req, body, cands, nil, 0)
}

// forwardBody relays req to each candidate in turn, then the primary. A
// candidate "fails" on a transport error, a 5xx, or a 412 staleness miss;
// anything else is the answer. Each hop gets an attempt span on tr
// (tagged upstream + status) and a per-upstream request counter bump;
// the return is the upstream that actually served ("" when none did).
func (r *Router) forwardBody(w http.ResponseWriter, req *http.Request, body []byte, cands []*replicaState, tr *obs.Trace, traceID uint64) (string, string) {
	attempts := 0
	for _, rs := range cands {
		sp := tr.StartSpan(nil, "attempt")
		sp.SetAttr("upstream", rs.url)
		sp.SetAttr("role", "replica")
		if c := r.reqCtr[rs.url]; c != nil {
			c.Inc()
		}
		ok, terminal, status := r.tryUpstream(w, req, rs.url, body, false, traceID)
		sp.SetAttr("status", status)
		sp.End()
		if ok || terminal {
			if ok {
				rs.served.Add(1)
				r.readsReplica.Add(1)
				return rs.url, "replica"
			}
			return "", ""
		}
		attempts++
		rs.healthy.Store(false) // next probe may bring it back
		r.failovers.Add(1)
		if c := r.foCtr[rs.url]; c != nil {
			c.Inc()
		}
		sp.SetAttr("failed_over", true)
		r.event(health.SevWarn, EventRouterFailover,
			"replica attempt failed, failing over", rs.url,
			map[string]any{"attempt": attempts, "status": status, "path": req.URL.Path})
		r.log.Warn("router: replica failed, failing over", "replica", rs.url, "attempt", attempts)
	}
	sp := tr.StartSpan(nil, "primary")
	sp.SetAttr("upstream", r.cfg.Primary)
	sp.SetAttr("role", "primary")
	if len(cands) > 0 || len(r.replicas) > 0 {
		sp.SetAttr("fallback", true)
	}
	if c := r.reqCtr[r.cfg.Primary]; c != nil {
		c.Inc()
	}
	ok, _, status := r.tryUpstream(w, req, r.cfg.Primary, body, true, traceID)
	sp.SetAttr("status", status)
	sp.End()
	if ok {
		if req.URL.Path == "/query" {
			r.readsPrimary.Add(1)
		}
		return r.cfg.Primary, "primary"
	}
	return "", ""
}

// tryUpstream performs one upstream attempt. Returns (served, terminal,
// status): served means the response was relayed; terminal means a
// non-retryable client-error response was relayed; status is the
// upstream's HTTP status (0 on a transport error). last relays whatever
// happens — there is nobody left to fail over to. A nonzero traceID is
// propagated on X-QGraph-Trace-ID so the serving node's spans join this
// request's tree.
func (r *Router) tryUpstream(w http.ResponseWriter, req *http.Request, base string, body []byte, last bool, traceID uint64) (bool, bool, int) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		base+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, `{"error":"router: building upstream request"}`, http.StatusInternalServerError)
		return false, true, 0
	}
	out.Header = req.Header.Clone()
	if traceID != 0 {
		out.Header.Set(obs.TraceHeader, strconv.FormatUint(traceID, 10))
	}
	resp, err := r.client.Do(out)
	if err != nil {
		if last {
			// Context cancellation is the client hanging up, not an
			// upstream outage.
			code := http.StatusBadGateway
			if errors.Is(err, req.Context().Err()) && req.Context().Err() != nil {
				code = 499 // client closed request
			}
			http.Error(w, `{"error":"router: no upstream available"}`, code)
			return false, true, 0
		}
		return false, false, 0
	}
	defer resp.Body.Close()
	retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusPreconditionFailed
	if retryable && !last {
		return false, false, resp.StatusCode
	}
	for k, vs := range resp.Header {
		if k == traceHeaderKey {
			// The node echoes the propagated trace ID; Set (not Add), or
			// the router's own stamp would duplicate the header.
			w.Header().Set(k, vs[len(vs)-1])
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true, resp.StatusCode < 500, resp.StatusCode
}

// traceHeaderKey is obs.TraceHeader in the canonical form http.Header
// iteration yields.
var traceHeaderKey = http.CanonicalHeaderKey(obs.TraceHeader)

// statusResponse is the router's own /healthz and /router/status body.
type statusResponse struct {
	Status string `json:"status"` // ok | degraded
	// Detail names what degraded the router (primary unreachable, empty
	// rotation) so a load balancer's probe log is self-explanatory.
	Detail               string           `json:"detail,omitempty"`
	Role                 string           `json:"role"`
	GraphVersion         uint64           `json:"graph_version"` // primary's committed version
	Primary              upstreamStatus   `json:"primary"`
	Replicas             []upstreamStatus `json:"replicas"`
	MaxStalenessVersions uint64           `json:"max_staleness_versions"`
	ReadsReplica         int64            `json:"reads_replica"`
	ReadsPrimary         int64            `json:"reads_primary"`
	Writes               int64            `json:"writes"`
	Failovers            int64            `json:"failovers"`
}

type upstreamStatus struct {
	URL            string `json:"url"`
	Healthy        bool   `json:"healthy"`
	AppliedVersion uint64 `json:"applied_version,omitempty"`
	LagVersions    uint64 `json:"lag_versions,omitempty"`
	InRotation     bool   `json:"in_rotation,omitempty"`
	Served         int64  `json:"served,omitempty"`
}

func (r *Router) serveStatus(w http.ResponseWriter) {
	primaryV := r.primaryVersion.Load()
	resp := statusResponse{
		Status:               "ok",
		Role:                 "router",
		GraphVersion:         primaryV,
		Primary:              upstreamStatus{URL: r.cfg.Primary, Healthy: r.primaryHealthy.Load()},
		MaxStalenessVersions: r.cfg.MaxStalenessVersions,
		ReadsReplica:         r.readsReplica.Load(),
		ReadsPrimary:         r.readsPrimary.Load(),
		Writes:               r.writes.Load(),
		Failovers:            r.failovers.Load(),
	}
	inRotation := 0
	for _, rs := range r.replicas {
		applied := rs.applied.Load()
		var lag uint64
		if primaryV > applied {
			lag = primaryV - applied
		}
		rot := r.inRotation(rs, primaryV)
		if rot {
			inRotation++
		}
		resp.Replicas = append(resp.Replicas, upstreamStatus{
			URL:            rs.url,
			Healthy:        rs.healthy.Load(),
			AppliedVersion: applied,
			LagVersions:    lag,
			InRotation:     rot,
			Served:         rs.served.Load(),
		})
	}
	// Degrade for real (503, not a 200 with a sad body): a load balancer
	// fronting several routers must be able to see a dead fleet. Primary
	// down means writes and the read of last resort are gone; an empty
	// rotation with replicas configured means the read plane has
	// collapsed onto the primary.
	code := http.StatusOK
	switch {
	case !resp.Primary.Healthy:
		resp.Status = "degraded"
		resp.Detail = "primary unreachable"
		code = http.StatusServiceUnavailable
	case len(r.replicas) > 0 && inRotation == 0:
		resp.Status = "degraded"
		resp.Detail = "no replicas in read rotation (reads falling back to the primary)"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}
