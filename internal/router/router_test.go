package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qgraph/internal/obs/health"
)

// fakeNode is a scriptable upstream: /healthz reports its version, /query
// and /mutate identify who served them.
type fakeNode struct {
	name      string
	role      string // "primary" | "replica"
	version   atomic.Uint64
	status    atomic.Value // string
	queries   atomic.Int64
	mutates   atomic.Int64
	lastTrace atomic.Value // string: the X-QGraph-Trace-ID the last /query carried
	srv       *httptest.Server
}

// lastTraceID returns the trace header the node last saw on /query.
func (n *fakeNode) lastTraceID() string {
	s, _ := n.lastTrace.Load().(string)
	return s
}

func newFakeNode(name, role string, version uint64) *fakeNode {
	n := &fakeNode{name: name, role: role}
	n.version.Store(version)
	n.status.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{
			"status":        n.status.Load(),
			"graph_version": n.version.Load(),
		}
		if n.role == "replica" {
			resp["role"] = "replica"
			resp["applied_version"] = n.version.Load()
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		n.queries.Add(1)
		w.Header().Set("X-QGraph-Version", fmt.Sprint(n.version.Load()))
		w.Header().Set("X-QGraph-Node", n.name+"/"+n.role)
		if id := r.Header.Get("X-QGraph-Trace-ID"); id != "" {
			// A real node honors the inbound trace ID and echoes it.
			n.lastTrace.Store(id)
			w.Header().Set("X-QGraph-Trace-ID", id)
		}
		json.NewEncoder(w).Encode(map[string]any{"served_by": n.name})
	})
	mux.HandleFunc("/trace/by-id/", func(w http.ResponseWriter, r *http.Request) {
		// Canned downstream half of a stitched trace, under the asked-for ID.
		id := strings.TrimPrefix(r.URL.Path, "/trace/by-id/")
		fmt.Fprintf(w, `{"trace":{"trace_id":%s,"complete":true,`+
			`"root":{"name":"query","children":[{"name":"execute"}]}}}`, id)
	})
	mux.HandleFunc("/mutate", func(w http.ResponseWriter, r *http.Request) {
		if n.role != "primary" {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		n.mutates.Add(1)
		// A real primary stamps the commit's version for read-your-writes.
		w.Header().Set("X-QGraph-Version", fmt.Sprint(n.version.Add(1)))
		json.NewEncoder(w).Encode(map[string]any{"served_by": n.name})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"served_by": n.name})
	})
	n.srv = httptest.NewServer(mux)
	return n
}

func (n *fakeNode) Close() { n.srv.Close() }

// newTestRouter builds a router with the health loop effectively frozen —
// tests call probeAll themselves for deterministic rotation state.
func newTestRouter(t *testing.T, primary *fakeNode, replicas []*fakeNode, maxLag uint64) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.srv.URL
	}
	rt, err := New(Config{
		Primary:              primary.srv.URL,
		Replicas:             urls,
		MaxStalenessVersions: maxLag,
		HealthEvery:          time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(func() { front.Close(); rt.Close() })
	return rt, front
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), resp.Header
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestRouterSpreadsReadsAndRoutesWrites: reads round-robin over healthy
// caught-up replicas, writes land only on the primary.
func TestRouterSpreadsReadsAndRoutesWrites(t *testing.T) {
	prim := newFakeNode("primary", "primary", 10)
	ra := newFakeNode("replica-a", "replica", 10)
	rb := newFakeNode("replica-b", "replica", 10)
	defer prim.Close()
	defer ra.Close()
	defer rb.Close()

	_, front := newTestRouter(t, prim, []*fakeNode{ra, rb}, 4)

	for i := 0; i < 10; i++ {
		code, _ := post(t, front.URL+"/query", `{}`)
		if code != 200 {
			t.Fatalf("read %d: status %d", i, code)
		}
	}
	if prim.queries.Load() != 0 {
		t.Fatalf("%d reads hit the primary with healthy replicas", prim.queries.Load())
	}
	if ra.queries.Load() != 5 || rb.queries.Load() != 5 {
		t.Fatalf("round-robin skew: a=%d b=%d, want 5/5", ra.queries.Load(), rb.queries.Load())
	}

	for i := 0; i < 3; i++ {
		code, _ := post(t, front.URL+"/mutate", `{"ops":[]}`)
		if code != 200 {
			t.Fatalf("write %d: status %d", i, code)
		}
	}
	if prim.mutates.Load() != 3 {
		t.Fatalf("primary saw %d writes, want 3", prim.mutates.Load())
	}
}

// TestRouterEvictsLaggingReplica: a replica past the staleness bound
// leaves the rotation and returns once it catches up.
func TestRouterEvictsLaggingReplica(t *testing.T) {
	prim := newFakeNode("primary", "primary", 100)
	ra := newFakeNode("replica-a", "replica", 100)
	rb := newFakeNode("replica-b", "replica", 90) // 10 behind, bound is 4
	defer prim.Close()
	defer ra.Close()
	defer rb.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra, rb}, 4)
	rt.probeAll()

	for i := 0; i < 6; i++ {
		if code, _ := post(t, front.URL+"/query", `{}`); code != 200 {
			t.Fatalf("read %d failed", i)
		}
	}
	if rb.queries.Load() != 0 {
		t.Fatalf("lagging replica served %d reads", rb.queries.Load())
	}
	if ra.queries.Load() != 6 {
		t.Fatalf("healthy replica served %d reads, want 6", ra.queries.Load())
	}

	// It catches up: next probe brings it back.
	rb.version.Store(99)
	rt.probeAll()
	for i := 0; i < 6; i++ {
		post(t, front.URL+"/query", `{}`)
	}
	if rb.queries.Load() == 0 {
		t.Fatal("caught-up replica never re-entered the rotation")
	}
}

// TestRouterFailsOverDeadReplica: a replica dying between probes costs a
// retry, never a client-visible failure.
func TestRouterFailsOverDeadReplica(t *testing.T) {
	prim := newFakeNode("primary", "primary", 10)
	ra := newFakeNode("replica-a", "replica", 10)
	rb := newFakeNode("replica-b", "replica", 10)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra, rb}, 4)
	rt.probeAll()
	rb.Close() // dies after the probe marked it healthy

	for i := 0; i < 10; i++ {
		code, body := post(t, front.URL+"/query", `{}`)
		if code != 200 {
			t.Fatalf("read %d: status %d body %s", i, code, body)
		}
	}
	if got := ra.queries.Load() + prim.queries.Load(); got != 10 {
		t.Fatalf("%d reads answered, want 10", got)
	}
	if rt.failovers.Load() == 0 {
		t.Fatal("no failover recorded for the dead replica")
	}
}

// TestRouterMinVersionRoutesToPrimary: a read demanding a version no
// replica has reached goes straight to the primary.
func TestRouterMinVersionRoutesToPrimary(t *testing.T) {
	prim := newFakeNode("primary", "primary", 100)
	ra := newFakeNode("replica-a", "replica", 98)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra}, 10)
	rt.probeAll()

	if code, _ := post(t, front.URL+"/query?min_version=100", `{}`); code != 200 {
		t.Fatal("min_version read failed")
	}
	if prim.queries.Load() != 1 || ra.queries.Load() != 0 {
		t.Fatalf("min_version read routed wrong: primary=%d replica=%d",
			prim.queries.Load(), ra.queries.Load())
	}
	// Within reach of the replica: stays on the replica.
	if code, _ := post(t, front.URL+"/query?min_version=97", `{}`); code != 200 {
		t.Fatal("satisfiable min_version read failed")
	}
	if ra.queries.Load() != 1 {
		t.Fatalf("replica served %d, want 1", ra.queries.Load())
	}
	// Malformed floor: rejected at the router.
	if code, _ := post(t, front.URL+"/query?min_version=banana", `{}`); code != 400 {
		t.Fatal("bad min_version accepted")
	}
}

// TestRouterStatusEndpoint: /healthz reflects rotation and routing
// counters, and /stats forwards to the primary.
func TestRouterStatusEndpoint(t *testing.T) {
	prim := newFakeNode("primary", "primary", 50)
	ra := newFakeNode("replica-a", "replica", 50)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra}, 4)
	rt.probeAll()
	post(t, front.URL+"/query", `{}`)

	code, body, _ := get(t, front.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	var st statusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "router" || st.Status != "ok" || st.GraphVersion != 50 {
		t.Fatalf("status %+v", st)
	}
	if len(st.Replicas) != 1 || !st.Replicas[0].InRotation || st.Replicas[0].Served != 1 {
		t.Fatalf("replica view %+v", st.Replicas)
	}
	if st.ReadsReplica != 1 {
		t.Fatalf("reads_replica %d, want 1", st.ReadsReplica)
	}

	_, body, _ = get(t, front.URL+"/stats")
	if !strings.Contains(body, "primary") {
		t.Fatalf("/stats not forwarded to primary: %s", body)
	}
}

// TestRouterAffinityPinsQueries: with Affinity on, identical requests
// always land on the same replica (sharding the result caches), distinct
// requests spread across the fleet, and failover still works when the
// pinned replica dies.
func TestRouterAffinityPinsQueries(t *testing.T) {
	prim := newFakeNode("primary", "primary", 10)
	ra := newFakeNode("replica-a", "replica", 10)
	rb := newFakeNode("replica-b", "replica", 10)
	defer prim.Close()
	defer ra.Close()
	defer rb.Close()

	urls := []string{ra.srv.URL, rb.srv.URL}
	rt, err := New(Config{
		Primary: prim.srv.URL, Replicas: urls,
		MaxStalenessVersions: 4, HealthEvery: time.Hour, Affinity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()
	defer rt.Close()
	rt.probeAll()

	// The same body always lands on the same replica.
	pinned := `{"kind":"sssp","source":1,"target":2}`
	for i := 0; i < 6; i++ {
		if code, _ := post(t, front.URL+"/query", pinned); code != 200 {
			t.Fatalf("pinned read %d failed", i)
		}
	}
	a, b := ra.queries.Load(), rb.queries.Load()
	if (a != 6 || b != 0) && (a != 0 || b != 6) {
		t.Fatalf("pinned body split across replicas: a=%d b=%d", a, b)
	}

	// Distinct bodies shard across the fleet.
	for i := 0; i < 32; i++ {
		body := fmt.Sprintf(`{"kind":"sssp","source":%d,"target":9}`, i)
		if code, _ := post(t, front.URL+"/query", body); code != 200 {
			t.Fatalf("sharded read %d failed", i)
		}
	}
	if ra.queries.Load() == a || rb.queries.Load() == b {
		t.Fatalf("distinct bodies did not shard: a=%d->%d b=%d->%d",
			a, ra.queries.Load(), b, rb.queries.Load())
	}

	// The pinned replica dying costs a failover, not a failure.
	var victim, survivor *fakeNode
	if a == 6 {
		victim, survivor = ra, rb
	} else {
		victim, survivor = rb, ra
	}
	before := survivor.queries.Load() + prim.queries.Load()
	victim.Close()
	if code, _ := post(t, front.URL+"/query", pinned); code != 200 {
		t.Fatal("pinned read failed after its replica died")
	}
	if survivor.queries.Load()+prim.queries.Load() != before+1 {
		t.Fatal("failover did not reroute the pinned read")
	}
}

// TestRouterVersionHeaderPreserved: the upstream's version stamp passes
// through the router untouched.
func TestRouterVersionHeaderPreserved(t *testing.T) {
	prim := newFakeNode("primary", "primary", 42)
	ra := newFakeNode("replica-a", "replica", 41)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra}, 10)
	rt.probeAll()

	resp, err := http.Post(front.URL+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-QGraph-Version"); got != "41" {
		t.Fatalf("version header %q, want 41 (the serving replica's)", got)
	}
}

// TestRouterMutateCarriesVersionHeader: a write through the router reaches
// the primary and its committed-version stamp passes back untouched — the
// token a client echoes as ?min_version= for read-your-writes.
func TestRouterMutateCarriesVersionHeader(t *testing.T) {
	prim := newFakeNode("primary", "primary", 42)
	ra := newFakeNode("replica-a", "replica", 42)
	defer prim.Close()
	defer ra.Close()

	_, front := newTestRouter(t, prim, []*fakeNode{ra}, 10)

	resp, err := http.Post(front.URL+"/mutate", "application/json",
		strings.NewReader(`{"ops":[{"op":"add_vertex"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if prim.mutates.Load() != 1 {
		t.Fatalf("primary saw %d mutates, want 1", prim.mutates.Load())
	}
	if got := resp.Header.Get("X-QGraph-Version"); got != "43" {
		t.Fatalf("mutate version header %q, want 43 (the commit's)", got)
	}
}

// TestRouterFailoverAndEvictionMetrics: failovers, evictions, and
// re-entries increment their per-upstream counters, land in the event
// ring, and render on the router's own /metrics page.
func TestRouterFailoverAndEvictionMetrics(t *testing.T) {
	prim := newFakeNode("primary", "primary", 100)
	ra := newFakeNode("replica-a", "replica", 100)
	rb := newFakeNode("replica-b", "replica", 100)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra, rb}, 4)
	rt.probeAll()
	rbURL := rb.srv.URL
	rb.Close() // dies between probes: reads that land on it fail over

	for i := 0; i < 4; i++ {
		if code, _ := post(t, front.URL+"/query", `{}`); code != 200 {
			t.Fatalf("read %d failed", i)
		}
	}
	if rt.foCtr[rbURL].Value() == 0 {
		t.Fatal("dead replica's failover counter never incremented")
	}
	if rt.reqCtr[rbURL].Value() == 0 {
		t.Fatal("dead replica's request counter never incremented")
	}

	// The next probe sees it down and evicts it from the rotation.
	rt.probeAll()
	if got := rt.evictCtr[rbURL].Value(); got != 1 {
		t.Fatalf("evictions for dead replica = %d, want 1", got)
	}
	if evs := rt.events.List(health.EventFilter{Type: EventReplicaEvicted}); len(evs) != 1 {
		t.Fatalf("eviction events = %d, want 1", len(evs))
	}

	// Lag-based eviction and re-entry on the surviving replica.
	ra.version.Store(90) // 10 behind, bound is 4
	rt.probeAll()
	if got := rt.evictCtr[ra.srv.URL].Value(); got != 1 {
		t.Fatalf("evictions for lagging replica = %d, want 1", got)
	}
	ra.version.Store(100)
	rt.probeAll()
	if got := rt.reenterCtr[ra.srv.URL].Value(); got != 1 {
		t.Fatalf("re-entries for caught-up replica = %d, want 1", got)
	}
	if evs := rt.events.List(health.EventFilter{Type: EventReplicaReentered}); len(evs) != 1 {
		t.Fatalf("re-entry events = %d, want 1", len(evs))
	}

	// All of it renders on the router's own metrics page.
	code, body, _ := get(t, front.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, fam := range []string{
		"qgraph_router_requests_total", "qgraph_router_failovers_total",
		"qgraph_router_evictions_total", "qgraph_router_reentries_total",
		"qgraph_router_replica_in_rotation", "qgraph_router_probe_seconds_bucket",
	} {
		if !strings.Contains(body, fam) {
			t.Fatalf("/metrics missing family %s", fam)
		}
	}
}

// TestRouterTracePropagation: a routed read carries one trace ID through
// router and replica — generated at the router (or honored inbound),
// forwarded on the wire, echoed in the response — and GET /trace/{id}
// stitches the replica's span tree under the router's serving attempt.
func TestRouterTracePropagation(t *testing.T) {
	prim := newFakeNode("primary", "primary", 10)
	ra := newFakeNode("replica-a", "replica", 10)
	defer prim.Close()
	defer ra.Close()

	rt, front := newTestRouter(t, prim, []*fakeNode{ra}, 4)
	rt.probeAll()

	resp, err := http.Post(front.URL+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-QGraph-Trace-ID")
	if id == "" || id == "0" {
		t.Fatalf("routed read returned trace id %q", id)
	}
	if vals := resp.Header.Values("X-QGraph-Trace-ID"); len(vals) != 1 {
		t.Fatalf("trace header appears %d times, want once", len(vals))
	}
	if got := ra.lastTraceID(); got != id {
		t.Fatalf("replica saw trace id %q, response says %q", got, id)
	}
	if got := resp.Header.Get("X-QGraph-Node"); got != "replica-a/replica" {
		t.Fatalf("node header %q, want replica-a/replica", got)
	}

	code, body, _ := get(t, front.URL+"/trace/"+id)
	if code != 200 {
		t.Fatalf("/trace/%s status %d: %s", id, code, body)
	}
	var st stitchedTrace
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(st.Trace.TraceID) != id {
		t.Fatalf("stitched trace id %d, want %s", st.Trace.TraceID, id)
	}
	if !st.Stitched || st.ServedBy != ra.srv.URL {
		t.Fatalf("stitched=%v served_by=%q, want stitched by %s", st.Stitched, st.ServedBy, ra.srv.URL)
	}
	if st.Trace.Root.Name != "route" {
		t.Fatalf("root span %q, want route", st.Trace.Root.Name)
	}
	// The replica's tree hangs under the attempt span that served.
	grafted := false
	for i := range st.Trace.Root.Children {
		c := &st.Trace.Root.Children[i]
		if c.Name != "attempt" {
			continue
		}
		if u, _ := c.Attrs["upstream"].(string); u != ra.srv.URL {
			continue
		}
		if len(c.Children) != 1 || c.Children[0].Name != "query" {
			t.Fatalf("attempt children %+v, want the replica's query span", c.Children)
		}
		if inst, _ := c.Children[0].Attrs["instance"].(string); inst == "" {
			t.Fatal("grafted subtree missing its instance tag")
		}
		grafted = true
	}
	if !grafted {
		t.Fatalf("no attempt span carries the replica subtree: %+v", st.Trace.Root.Children)
	}

	// An inbound trace ID is honored end to end, not replaced.
	req, _ := http.NewRequest("POST", front.URL+"/query", strings.NewReader(`{}`))
	req.Header.Set("X-QGraph-Trace-ID", "7777")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-QGraph-Trace-ID"); got != "7777" {
		t.Fatalf("inbound trace id replaced: got %q, want 7777", got)
	}
	if got := ra.lastTraceID(); got != "7777" {
		t.Fatalf("replica saw %q, want the inbound 7777", got)
	}
}
