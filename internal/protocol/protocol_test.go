package protocol_test

import (
	"reflect"
	"testing"

	"qgraph/internal/partition"
	"qgraph/internal/protocol"
	"qgraph/internal/query"
	"qgraph/internal/transport"
)

// roundTrip encodes m into a wire frame and decodes it back.
func roundTrip(t *testing.T, m protocol.Message) protocol.Message {
	t.Helper()
	buf, err := transport.Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	typ := protocol.MsgType(buf[4])
	if typ != m.Type() {
		t.Fatalf("frame tags type %d, message says %d", typ, m.Type())
	}
	got, err := transport.Decode(typ, buf[5:])
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return got
}

// TestServingPathRoundTrips covers the message types the serving layer
// depends on: query submission, the barrier messages that carry execution
// statistics back, and the finish/global-barrier control messages.
func TestServingPathRoundTrips(t *testing.T) {
	spec := query.Spec{
		ID: 42, Kind: query.KindSSSP, Source: 7, Target: 99,
		MaxIters: 20, Epsilon: 1e-4,
	}
	spec.SetHome(3)
	msgs := []protocol.Message{
		&protocol.ExecuteQuery{Spec: spec},
		&protocol.BarrierReady{Q: 42, Step: 3, Expect: 2, Solo: true, Drained: true},
		&protocol.BarrierSynch{
			Q: 42, W: 1, Step: 3, FromStep: 1, LocalIters: 2,
			Processed: 17, NActiveNext: 4, ScopeSize: 120,
			SentBatches: []int32{0, 2, 0, 1},
			BestGoal:    12.5, MinFrontier: 11.25,
			Intersections: []protocol.IntersectionStat{
				{Q1: 42, Q2: 43, Shared: 9},
				{Q1: 42, Q2: 44, Shared: 1},
			},
			Finished: true,
		},
		&protocol.QueryFinish{Q: 42, Reason: protocol.FinishEarly},
		&protocol.GlobalStop{Epoch: 5},
		&protocol.StopAck{Epoch: 5, W: 2, SentTotals: []uint64{3, 0, 7, 1}},
		&protocol.DrainCheck{Epoch: 5, Scope: true, ExpectRecv: []uint64{1, 2, 3, 4}},
		&protocol.DrainAck{Epoch: 5, W: 3},
		&protocol.GlobalStart{Epoch: 5},
		&protocol.Shutdown{},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip:\n got  %#v\n want %#v", m, got, m)
		}
	}
}

// TestExecuteQueryPreservesSpecIdentity checks that the fields forming
// the serving layer's cache key — and the home-pinning execution hint —
// survive the wire intact for every query kind.
func TestExecuteQueryPreservesSpecIdentity(t *testing.T) {
	specs := []query.Spec{
		{ID: 1, Kind: query.KindSSSP, Source: 0, Target: 5},
		{ID: 2, Kind: query.KindBFS, Source: 3, Target: -1 /* NilVertex flood */, MaxIters: 4},
		{ID: 3, Kind: query.KindPOI, Source: 9, Target: -1},
		{ID: 4, Kind: query.KindPageRank, Source: 2, Target: -1, MaxIters: 20, Epsilon: 1e-4},
	}
	specs[1].SetHome(0) // worker 0 — encoding must not confuse it with "unpinned"
	for _, sp := range specs {
		got := roundTrip(t, &protocol.ExecuteQuery{Spec: sp}).(*protocol.ExecuteQuery)
		if got.Spec != sp {
			t.Errorf("spec round trip: got %+v, want %+v", got.Spec, sp)
		}
		gh, gok := got.Spec.HomeWorker()
		wh, wok := sp.HomeWorker()
		if gh != wh || gok != wok {
			t.Errorf("home pinning lost: got (%d,%v), want (%d,%v)", gh, gok, wh, wok)
		}
	}
}

// TestNodeAddressing pins the controller/worker node id mapping the
// transport relies on.
func TestNodeAddressing(t *testing.T) {
	if protocol.ControllerNode != 0 {
		t.Fatalf("controller node id %d, want 0", protocol.ControllerNode)
	}
	for w := partition.WorkerID(0); w < 5; w++ {
		n := protocol.WorkerNode(w)
		if n == protocol.ControllerNode {
			t.Fatalf("worker %d mapped onto the controller node", w)
		}
		if got := protocol.WorkerOf(n); got != w {
			t.Fatalf("WorkerOf(WorkerNode(%d)) = %d", w, got)
		}
	}
}

// TestFinishReasonStrings pins the API wire values of finish reasons.
func TestFinishReasonStrings(t *testing.T) {
	want := map[protocol.FinishReason]string{
		protocol.FinishConverged: "converged",
		protocol.FinishEarly:     "early",
		protocol.FinishMaxIters:  "max_iters",
		protocol.FinishCancelled: "cancelled",
		protocol.FinishRejected:  "rejected",
		protocol.FinishReason(0): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("FinishReason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}
