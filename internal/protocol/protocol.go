// Package protocol defines the messages exchanged between the Q-Graph
// controller, workers, and worker peers. It is the concrete realisation of
// the paper's API (Table 2): scheduleQuery/executeQuery, barrierSynch/
// barrierReady with piggybacked statistics, move, and the global STOP/START
// barrier — plus the low-level vertex message batches.
//
// Node addressing: node 0 is the controller, node w+1 is worker w.
package protocol

import (
	"qgraph/internal/delta"
	"qgraph/internal/graph"
	"qgraph/internal/partition"
	"qgraph/internal/query"
)

// NodeID addresses a protocol participant: 0 = controller, w+1 = worker w.
type NodeID uint8

// ControllerNode is the controller's node id.
const ControllerNode NodeID = 0

// WorkerNode converts a worker id to its node id.
func WorkerNode(w partition.WorkerID) NodeID { return NodeID(w) + 1 }

// WorkerOf converts a worker node id back to the worker id. Must not be
// called with ControllerNode.
func WorkerOf(n NodeID) partition.WorkerID { return partition.WorkerID(n - 1) }

// MsgType discriminates wire messages.
type MsgType uint8

// Message type tags. The numeric values are part of the wire format.
const (
	// controller → worker
	TExecuteQuery MsgType = iota + 1
	TBarrierReady
	TQueryFinish
	TGlobalStop
	TDrainCheck
	TMoveScope
	TOwnershipUpdate
	TGlobalStart
	TShutdown
	// worker → controller
	TBarrierSynch
	TStopAck
	TDrainAck
	TMoveAck
	// worker ↔ worker
	TVertexBatch
	TScopeData
	// Streaming graph updates and liveness (appended to keep the earlier
	// wire values stable).
	// controller → worker
	TDeltaBatch
	TPing
	// worker → controller
	TDeltaAck
	TPong
	// Worker failure recovery (appended to keep earlier wire values
	// stable).
	// controller → worker
	TRecoverStart
	TPartitionGrant
	// worker → controller
	TWorkerHello
	TPartitionAck
)

// Message is any protocol message.
type Message interface {
	Type() MsgType
}

// ---------------------------------------------------------------------------
// Controller → worker

// ExecuteQuery asks workers to start executing a query (paper API
// executeQuery(q)). It is broadcast; only workers owning initially active
// vertices do work in superstep 0.
type ExecuteQuery struct {
	Spec query.Spec
}

// Type implements Message.
func (*ExecuteQuery) Type() MsgType { return TExecuteQuery }

// BarrierReady releases a worker waiting on query Q's barrier for superstep
// Step (paper API barrierReady(q)). Expect is the number of vertex batches
// tagged (Q, Step-1) the worker must have received before computing Step.
// Solo marks the worker as the only one involved, enabling the local query
// barrier: it may keep iterating without controller round-trips while the
// query stays local. Drained means a global barrier intervened and all
// in-flight batches were already delivered (skip the Expect wait).
type BarrierReady struct {
	Q       query.ID
	Step    int32
	Expect  int32
	Solo    bool
	Drained bool
}

// Type implements Message.
func (*BarrierReady) Type() MsgType { return TBarrierReady }

// FinishReason says why a query ended.
type FinishReason uint8

// Finish reasons.
const (
	FinishConverged  FinishReason = iota + 1 // no active vertices remain
	FinishEarly                              // monotone bound: goal can't improve
	FinishMaxIters                           // superstep cap reached
	FinishCancelled                          // shutdown or user cancel
	FinishRejected                           // invalid request (e.g. reused query id)
	FinishWorkerLost                         // a worker stopped answering heartbeats
)

// String returns the reason name (also the serving API's wire value).
func (r FinishReason) String() string {
	switch r {
	case FinishConverged:
		return "converged"
	case FinishEarly:
		return "early"
	case FinishMaxIters:
		return "max_iters"
	case FinishCancelled:
		return "cancelled"
	case FinishRejected:
		return "rejected"
	case FinishWorkerLost:
		return "worker_lost"
	default:
		return "unknown"
	}
}

// QueryFinish tells a worker to drop query Q's state. The worker answers
// with a final BarrierSynch carrying its intersection statistics if Stats
// is set.
type QueryFinish struct {
	Q      query.ID
	Reason FinishReason
}

// Type implements Message.
func (*QueryFinish) Type() MsgType { return TQueryFinish }

// GlobalStop initiates the STOP phase of the global barrier (Sec. 3.3):
// workers pause query execution at the next superstep boundary and answer
// with StopAck carrying their cumulative per-peer batch send counters.
type GlobalStop struct {
	Epoch int32
}

// Type implements Message.
func (*GlobalStop) Type() MsgType { return TGlobalStop }

// DrainCheck is sent after all StopAcks: ExpectRecv[w] is the cumulative
// number of vertex batches worker w should have received from each peer
// (indexed by sender worker id). The worker answers DrainAck once its
// receive counters match — then the network is provably quiet. With Scope
// set, the expectations refer to ScopeData messages instead (the second
// drain round of a global barrier, after moves).
type DrainCheck struct {
	Epoch      int32
	Scope      bool
	ExpectRecv []uint64 // indexed by sender worker id
}

// Type implements Message.
func (*DrainCheck) Type() MsgType { return TDrainCheck }

// MoveScope asks the receiving worker to move the local query scope
// LS(Q, w) — the vertices query Q touched on it — to worker To (paper API
// move(LS(q,w), w, w')). Sent only inside a global barrier. The worker
// ships the vertices' query data in a ScopeData message and reports the
// moved vertex ids in MoveAck.
type MoveScope struct {
	Epoch int32
	Q     query.ID
	To    partition.WorkerID
}

// Type implements Message.
func (*MoveScope) Type() MsgType { return TMoveScope }

// OwnershipUpdate broadcasts vertex ownership changes resulting from the
// moves of one global barrier. Workers apply it before GlobalStart.
type OwnershipUpdate struct {
	Epoch    int32
	Vertices []graph.VertexID
	Owners   []partition.WorkerID // parallel to Vertices
}

// Type implements Message.
func (*OwnershipUpdate) Type() MsgType { return TOwnershipUpdate }

// GlobalStart ends the global barrier; queries resume.
type GlobalStart struct {
	Epoch int32
}

// Type implements Message.
func (*GlobalStart) Type() MsgType { return TGlobalStart }

// Shutdown terminates a worker.
type Shutdown struct{}

// Type implements Message.
func (*Shutdown) Type() MsgType { return TShutdown }

// ---------------------------------------------------------------------------
// Worker → controller

// IntersectionStat reports |LS(Q1,w) ∩ LS(Q2,w)|: the paper's intersection
// function Iw restricted to query pairs, which is what Q-cut's clustering
// consumes.
type IntersectionStat struct {
	Q1, Q2 query.ID
	Shared int32
}

// BarrierSynch reports that worker W finished query Q's superstep Step
// (paper API barrierSynch(q,w)), with the monitoring statistics of
// stats(q, |LS(q,w)|, Iw, w) piggybacked (Sec. 3.4).
//
// FromStep < Step when the worker ran local (solo) supersteps without
// controller round-trips; LocalIters counts them.
type BarrierSynch struct {
	Q          query.ID
	W          partition.WorkerID
	Step       int32 // last completed superstep
	FromStep   int32 // first superstep covered by this report
	LocalIters int32

	Processed   int32   // active vertices computed in Step (load signal)
	NActiveNext int32   // local activations pending for Step+1
	ComputeNS   int64   // wall time spent in compute for the covered steps
	ScopeSize   int32   // |LS(Q, W)|: vertices Q touched on W so far
	SentBatches []int32 // vertex batches sent during Step, by dest worker
	BestGoal    float64 // best goal value seen on W (query.NoResult if none)
	MinFrontier float64 // min over pending local msgs + values sent in Step

	Intersections []IntersectionStat // piggybacked stats, may be nil
	Finished      bool               // response to QueryFinish (final stats)
}

// Type implements Message.
func (*BarrierSynch) Type() MsgType { return TBarrierSynch }

// StopAck acknowledges GlobalStop. SentTotals[w] is the cumulative number
// of vertex batches this worker has ever sent to worker w.
type StopAck struct {
	Epoch      int32
	W          partition.WorkerID
	SentTotals []uint64
}

// Type implements Message.
func (*StopAck) Type() MsgType { return TStopAck }

// DrainAck confirms all expected batches arrived.
type DrainAck struct {
	Epoch int32
	W     partition.WorkerID
}

// Type implements Message.
func (*DrainAck) Type() MsgType { return TDrainAck }

// MoveAck reports the vertices actually moved for a MoveScope directive,
// so the controller can broadcast the ownership delta.
type MoveAck struct {
	Epoch    int32
	Q        query.ID
	From, To partition.WorkerID
	Vertices []graph.VertexID
}

// Type implements Message.
func (*MoveAck) Type() MsgType { return TMoveAck }

// ---------------------------------------------------------------------------
// Worker ↔ worker

// VertexMsg is one vertex-to-vertex message.
type VertexMsg struct {
	To  graph.VertexID
	Val float64
}

// VertexBatch carries vertex messages of query Q emitted during superstep
// Step from worker From, to be consumed in superstep Step+1. The sender
// splits batches at the configured batch limits (Sec. 4.1(iv)). Gen is the
// sender's recovery generation: receivers drop batches from an older
// generation without counting them, so the flow-control counters both
// sides reset during recovery stay exact (see RecoverStart).
type VertexBatch struct {
	Q       query.ID
	Step    int32
	From    partition.WorkerID
	Gen     int32
	Entries []VertexMsg
}

// Type implements Message.
func (*VertexBatch) Type() MsgType { return TVertexBatch }

// QueryValue is a (query, value) pair of a moved vertex.
type QueryValue struct {
	Q   query.ID
	Val float64
}

// PendingMsg is an undelivered inbox entry of a moved vertex.
type PendingMsg struct {
	Q    query.ID
	Step int32
	Val  float64
}

// MovedVertex is the full migratable state of one vertex: its value under
// every live query that touched it, pending inbox entries, and the ids of
// finished queries whose remembered scopes contain it (so future move
// directives for those historical hotspots keep working).
type MovedVertex struct {
	V        graph.VertexID
	Values   []QueryValue
	Pending  []PendingMsg
	Finished []query.ID
}

// ScopeData carries the state of vertices moved by a MoveScope directive.
// Sent worker→worker during a global barrier, when the network is
// otherwise quiet. Gen fences recovery generations exactly as on
// VertexBatch.
type ScopeData struct {
	Epoch    int32
	Q        query.ID
	From     partition.WorkerID
	Gen      int32
	Vertices []MovedVertex
}

// Type implements Message.
func (*ScopeData) Type() MsgType { return TScopeData }

// ---------------------------------------------------------------------------
// Streaming graph updates (internal/delta)

// DeltaBatch commits one batch of graph mutations as graph version
// Version. It is broadcast inside a global barrier while the
// vertex-message network is drained, so every worker applies it between
// supersteps and no query ever observes a half-applied batch. NewOwners
// assigns an owner to each vertex the batch adds (in op order); every
// node extends its ownership table identically.
type DeltaBatch struct {
	Version   uint64
	Ops       []delta.Op
	NewOwners []partition.WorkerID
}

// Type implements Message.
func (*DeltaBatch) Type() MsgType { return TDeltaBatch }

// DeltaAck confirms a worker applied DeltaBatch Version.
type DeltaAck struct {
	Version uint64
	W       partition.WorkerID
}

// Type implements Message.
func (*DeltaAck) Type() MsgType { return TDeltaAck }

// ---------------------------------------------------------------------------
// Liveness

// Ping is the controller's heartbeat probe; workers answer with Pong
// carrying the same sequence number. Workers drain their inbox between
// supersteps, so only a dead or wedged worker stays silent.
type Ping struct {
	Seq int64
}

// Type implements Message.
func (*Ping) Type() MsgType { return TPing }

// Pong answers a Ping.
type Pong struct {
	Seq int64
	W   partition.WorkerID
}

// Type implements Message.
func (*Pong) Type() MsgType { return TPong }

// ---------------------------------------------------------------------------
// Worker failure recovery (internal/recover)
//
// When liveness declares a worker dead, the controller fences it and runs a
// recovery round: survivors receive RecoverStart (reset in-flight query
// state, zero flow-control counters, adopt the authoritative ownership
// map, roll back an uncommitted delta batch), a respawned worker announces
// itself with WorkerHello and receives PartitionGrant (the same reset plus
// a committed-op replay that rebuilds its graph view from the shared CSR
// base). Both answer PartitionAck; once every live worker acknowledged the
// generation, the controller retries an aborted delta commit and restarts
// the in-flight queries from superstep 0.

// RecoverStart resets a surviving worker into recovery generation Gen:
// drop all live query state (affected queries are re-executed), zero the
// vertex-batch and scope flow counters, adopt Owner as the full
// authoritative ownership map, and — if an uncommitted delta batch was
// applied — roll the graph view back to committed Version. The worker
// answers with PartitionAck.
type RecoverStart struct {
	Gen     int32
	Version uint64 // committed graph version to settle on
	Owner   []partition.WorkerID
}

// Type implements Message.
func (*RecoverStart) Type() MsgType { return TRecoverStart }

// PartitionGrant admits a (re)spawned worker into the live set at
// generation Gen: it rebuilds its graph view by replaying Batches over the
// graph at BaseVersion up to committed Version, adopts Owner, and answers
// with PartitionAck. BaseVersion 0 replays over the shared base graph;
// a non-zero BaseVersion names a checkpoint (internal/snapshot) the worker
// must resolve locally — the controller truncates its committed-op log at
// every checkpoint, so only the tail since the newest one ever crosses the
// wire. Until the grant arrives, a rejoining worker ignores every other
// message — stale traffic addressed to its dead predecessor.
type PartitionGrant struct {
	Gen         int32
	Version     uint64
	BaseVersion uint64
	Owner       []partition.WorkerID
	Batches     []delta.LogBatch
}

// Type implements Message.
func (*PartitionGrant) Type() MsgType { return TPartitionGrant }

// WorkerHello announces a (re)spawned worker to the controller; the
// controller answers with PartitionGrant when it admits the worker back.
type WorkerHello struct {
	W partition.WorkerID
}

// Type implements Message.
func (*WorkerHello) Type() MsgType { return TWorkerHello }

// PartitionAck acknowledges RecoverStart or PartitionGrant: worker W is
// settled in recovery generation Gen at graph Version. The controller
// treats a version mismatch as replica divergence (fatal).
type PartitionAck struct {
	Gen     int32
	W       partition.WorkerID
	Version uint64
}

// Type implements Message.
func (*PartitionAck) Type() MsgType { return TPartitionAck }
