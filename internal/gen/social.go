package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"qgraph/internal/graph"
)

// SocialConfig parameterises the synthetic social network: a planted-
// partition (stochastic block model) graph whose communities play the role
// of the paper's "social circles", with extra hub vertices that create the
// overlapping computational hotspots described in Application 2 (Sec. 1).
type SocialConfig struct {
	NumVertices    int
	NumCommunities int
	ZipfS          float64 // community size skew
	IntraDegree    float64 // expected within-community degree
	InterDegree    float64 // expected cross-community degree
	NumHubs        int     // high-degree vertices spanning communities
	HubDegree      int     // extra edges per hub
	Seed           uint64
}

// DefaultSocialConfig returns a small-world-ish social graph config with
// n vertices.
func DefaultSocialConfig(n int) SocialConfig {
	return SocialConfig{
		NumVertices:    n,
		NumCommunities: max(8, n/800),
		ZipfS:          0.8,
		IntraDegree:    10,
		InterDegree:    1.5,
		NumHubs:        max(4, n/2000),
		HubDegree:      64,
		Seed:           0x50C1A1,
	}
}

// SocialNet is a generated social graph with its planted communities.
type SocialNet struct {
	G           *graph.Graph
	CommunityOf []int32 // community index per vertex
	Communities [][]graph.VertexID
	Hubs        []graph.VertexID
}

// Social generates the social network. Edge weights are all 1 (social
// queries count hops / propagate influence, they do not model travel time).
// The graph is undirected (both edge directions present) and connected.
func Social(cfg SocialConfig) (*SocialNet, error) {
	n := cfg.NumVertices
	if n < cfg.NumCommunities || cfg.NumCommunities < 1 {
		return nil, fmt.Errorf("gen: social config invalid: n=%d communities=%d", n, cfg.NumCommunities)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xda3e39cb94b95bdb))

	// Assign community sizes by Zipf and fill membership contiguously, then
	// shuffle vertex ids so community is uncorrelated with vertex id (the
	// Hash partitioner must not get community locality for free).
	weights := make([]float64, cfg.NumCommunities)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		total += weights[i]
	}
	commOf := make([]int32, n)
	v := 0
	for i := range weights {
		cnt := int(weights[i] / total * float64(n))
		if i == len(weights)-1 {
			cnt = n - v
		}
		for j := 0; j < cnt && v < n; j++ {
			commOf[v] = int32(i)
			v++
		}
	}
	for ; v < n; v++ {
		commOf[v] = int32(rng.IntN(cfg.NumCommunities))
	}
	perm := rng.Perm(n)
	shuffled := make([]int32, n)
	for i, p := range perm {
		shuffled[p] = commOf[i]
	}
	commOf = shuffled

	members := make([][]graph.VertexID, cfg.NumCommunities)
	for i, c := range commOf {
		members[c] = append(members[c], graph.VertexID(i))
	}

	type edgeKey struct{ a, b graph.VertexID }
	seen := make(map[edgeKey]bool, n*8)
	b := graph.NewBuilder(n)
	uf := newUnionFind(n)
	addEdge := func(a, c graph.VertexID) {
		if a == c {
			return
		}
		if a > c {
			a, c = c, a
		}
		k := edgeKey{a, c}
		if seen[k] {
			return
		}
		seen[k] = true
		b.AddBiEdge(a, c, 1)
		uf.union(int(a), int(c))
	}

	// Intra-community edges: a ring (guaranteeing community connectivity)
	// plus random pairs up to the expected degree.
	for _, mem := range members {
		m := len(mem)
		if m < 2 {
			continue
		}
		for i := 0; i < m; i++ {
			addEdge(mem[i], mem[(i+1)%m])
		}
		extra := int(float64(m) * (cfg.IntraDegree - 2) / 2)
		for e := 0; e < extra; e++ {
			addEdge(mem[rng.IntN(m)], mem[rng.IntN(m)])
		}
	}
	// Cross-community edges.
	inter := int(float64(n) * cfg.InterDegree / 2)
	for e := 0; e < inter; e++ {
		addEdge(graph.VertexID(rng.IntN(n)), graph.VertexID(rng.IntN(n)))
	}
	// Hubs: random vertices that gain many extra edges across communities,
	// creating the changing-popularity hotspots of Application 2.
	hubs := make([]graph.VertexID, 0, cfg.NumHubs)
	for h := 0; h < cfg.NumHubs; h++ {
		hub := graph.VertexID(rng.IntN(n))
		hubs = append(hubs, hub)
		for e := 0; e < cfg.HubDegree; e++ {
			addEdge(hub, graph.VertexID(rng.IntN(n)))
		}
	}
	// Connectivity repair: link every stray component to vertex 0's.
	root := uf.find(0)
	for i := 1; i < n; i++ {
		if uf.find(i) != root {
			addEdge(0, graph.VertexID(i))
			root = uf.find(0)
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &SocialNet{G: g, CommunityOf: commOf, Communities: members, Hubs: hubs}, nil
}
