// Package gen produces the synthetic datasets the reproduction runs on.
//
// The paper evaluates on OpenStreetMap exports of Germany (GY, 11.8M
// vertices) and Baden-Württemberg (BW, 1.8M vertices) plus real city
// populations. Those inputs are not available offline, so this package
// builds the closest synthetic equivalents (see DESIGN.md §3): planar
// road networks with travel-time weights and population-weighted city
// hotspots, small-world social graphs with planted communities, and
// preferential-attachment knowledge graphs. Everything is deterministic
// given the config seed.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"qgraph/internal/graph"
)

// City is a query hotspot on a road network: a populated place whose
// population determines how many queries the workload generator aims at it.
type City struct {
	Name   string
	Center graph.Coord
	Vertex graph.VertexID // junction closest to the center
	Pop    float64        // synthetic population (Zipf across cities)
	Radius float64        // hotspot radius in km (grows with population)
}

// RoadConfig parameterises the synthetic road network.
type RoadConfig struct {
	CellsX, CellsY int     // junction grid dimensions
	CellKM         float64 // spacing between adjacent junctions in km
	Jitter         float64 // junction position jitter as a fraction of CellKM
	RemoveProb     float64 // probability of dropping a local road
	DiagProb       float64 // probability of an extra diagonal road
	HighwayEvery   int     // every n-th row/column is a fast highway (0 = none)
	LocalSpeed     float64 // km/h on local roads
	HighwaySpeed   float64 // km/h on highways
	NumCities      int     // number of query hotspots
	ZipfS          float64 // skew of the city population distribution
	TagProb        float64 // POI tag probability per vertex (paper: 1/12500)
	Seed           uint64
}

// BWConfig resembles the Baden-Württemberg road network of the paper at
// 1/scale of the vertex count (scale=1 ≈ 1.8M vertices, the paper size).
// The paper uses the 16 biggest BW cities as hotspots.
//
// The POI tag probability is the paper's 1/12500 at scale 1 and grows
// proportionally on scaled-down maps so that the number of tagged vertices
// per map — and with it the radius a POI query explores relative to the
// hotspot layout — stays comparable (capped at 1%).
func BWConfig(scale int) RoadConfig {
	cells := int(math.Sqrt(1802728 / float64(max(scale, 1))))
	return RoadConfig{
		CellsX: cells, CellsY: cells,
		CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 16, LocalSpeed: 50, HighwaySpeed: 110,
		NumCities: 16, ZipfS: 1.0,
		TagProb: math.Min(0.01, float64(max(scale, 1))/12500),
		Seed:    0xB2,
	}
}

// GYConfig resembles the Germany road network at 1/scale of the vertex
// count (scale=1 ≈ 11.8M vertices) with the paper's 64 city hotspots.
// See BWConfig for the tag-probability scaling.
func GYConfig(scale int) RoadConfig {
	cells := int(math.Sqrt(11805883 / float64(max(scale, 1))))
	return RoadConfig{
		CellsX: cells, CellsY: cells,
		CellKM: 0.8, Jitter: 0.3,
		RemoveProb: 0.08, DiagProb: 0.05,
		HighwayEvery: 20, LocalSpeed: 50, HighwaySpeed: 120,
		NumCities: 64, ZipfS: 1.0,
		TagProb: math.Min(0.01, float64(max(scale, 1))/12500),
		Seed:    0x67,
	}
}

// RoadNet is a generated road network with its hotspot cities and a spatial
// index for coordinate lookups.
type RoadNet struct {
	G      *graph.Graph
	Cities []City
	Index  *SpatialIndex
	Config RoadConfig
}

// Road generates a synthetic road network: a jittered junction grid with
// bidirectional travel-time-weighted segments, random removals (dead ends,
// rivers), occasional diagonals, fast highway rows/columns, and Zipf-
// populated cities. The result is always strongly connected (a repair pass
// reconnects pockets isolated by removals).
func Road(cfg RoadConfig) (*RoadNet, error) {
	if cfg.CellsX < 2 || cfg.CellsY < 2 {
		return nil, fmt.Errorf("gen: grid %dx%d too small", cfg.CellsX, cfg.CellsY)
	}
	if cfg.NumCities < 1 {
		return nil, fmt.Errorf("gen: need at least one city")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	nx, ny := cfg.CellsX, cfg.CellsY
	n := nx * ny
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*nx + x) }

	coords := make([]graph.Coord, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			jx := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellKM
			jy := (rng.Float64()*2 - 1) * cfg.Jitter * cfg.CellKM
			coords[id(x, y)] = graph.Coord{
				X: float32(float64(x)*cfg.CellKM + jx),
				Y: float32(float64(y)*cfg.CellKM + jy),
			}
		}
	}

	isHighway := func(x, y, x2, y2 int) bool {
		if cfg.HighwayEvery <= 0 {
			return false
		}
		if y == y2 && y%cfg.HighwayEvery == 0 {
			return true
		}
		if x == x2 && x%cfg.HighwayEvery == 0 {
			return true
		}
		return false
	}

	uf := newUnionFind(n)
	b := graph.NewBuilder(n)
	addRoad := func(a, c graph.VertexID, highway bool) {
		speed := cfg.LocalSpeed
		if highway {
			speed = cfg.HighwaySpeed
		}
		length := coords[a].Dist(coords[c])
		// Weight is travel time in seconds, as in the paper (length of the
		// segment divided by the speed limit).
		w := float32(length / speed * 3600)
		b.AddBiEdge(a, c, w)
		uf.union(int(a), int(c))
	}

	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			if x+1 < nx {
				hw := isHighway(x, y, x+1, y)
				if hw || rng.Float64() >= cfg.RemoveProb {
					addRoad(v, id(x+1, y), hw)
				}
			}
			if y+1 < ny {
				hw := isHighway(x, y, x, y+1)
				if hw || rng.Float64() >= cfg.RemoveProb {
					addRoad(v, id(x, y+1), hw)
				}
			}
			if x+1 < nx && y+1 < ny && rng.Float64() < cfg.DiagProb {
				addRoad(v, id(x+1, y+1), false)
			}
		}
	}

	// Repair pass: reconnect any pocket that removals isolated by restoring
	// a grid edge that crosses the component boundary.
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			if x+1 < nx && uf.find(int(v)) != uf.find(int(id(x+1, y))) {
				addRoad(v, id(x+1, y), false)
			}
			if y+1 < ny && uf.find(int(v)) != uf.find(int(id(x, y+1))) {
				addRoad(v, id(x, y+1), false)
			}
		}
	}

	tags := make([]bool, n)
	for i := range tags {
		if rng.Float64() < cfg.TagProb {
			tags[i] = true
		}
	}
	b.SetCoords(coords)
	b.SetTags(tags)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	idx := NewSpatialIndex(g, cfg.CellKM*4)
	cities := placeCities(cfg, coords, idx, rng)
	return &RoadNet{G: g, Cities: cities, Index: idx, Config: cfg}, nil
}

// placeCities scatters NumCities hotspots with minimum separation and Zipf
// populations (population of the i-th largest city ∝ 1/(i+1)^s, matching
// the skew of real city-size distributions the paper piggybacks on).
func placeCities(cfg RoadConfig, coords []graph.Coord, idx *SpatialIndex, rng *rand.Rand) []City {
	w := float64(cfg.CellsX) * cfg.CellKM
	h := float64(cfg.CellsY) * cfg.CellKM
	minSep := math.Sqrt(w*h/float64(cfg.NumCities)) * 0.5
	var centers []graph.Coord
	for attempts := 0; len(centers) < cfg.NumCities && attempts < cfg.NumCities*200; attempts++ {
		c := graph.Coord{
			X: float32(rng.Float64()*w*0.9 + w*0.05),
			Y: float32(rng.Float64()*h*0.9 + h*0.05),
		}
		ok := true
		for _, o := range centers {
			if c.Dist(o) < minSep {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	// If rejection sampling could not reach the target count (tiny maps),
	// fill the remainder without the separation constraint.
	for len(centers) < cfg.NumCities {
		centers = append(centers, graph.Coord{
			X: float32(rng.Float64() * w), Y: float32(rng.Float64() * h),
		})
	}

	cities := make([]City, cfg.NumCities)
	for i := range cities {
		pop := 1e6 / math.Pow(float64(i+1), cfg.ZipfS)
		// Hotspot radius grows with the square root of population, spans
		// at least a few junctions, and stays well inside the city's own
		// neighborhood so hotspots do not bleed into each other on small
		// maps.
		radius := math.Sqrt(pop) / 500 * cfg.CellKM * 8
		radius = math.Max(2*cfg.CellKM, math.Min(radius, minSep/3))
		cities[i] = City{
			Name:   fmt.Sprintf("city-%02d", i),
			Center: centers[i],
			Vertex: idx.Nearest(centers[i]),
			Pop:    pop,
			Radius: radius,
		}
	}
	_ = coords
	return cities
}

type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &unionFind{parent: p, rank: make([]int8, n)}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != int32(x) {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = int(u.parent[x])
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
