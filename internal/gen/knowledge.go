package gen

import (
	"fmt"
	"math/rand/v2"

	"qgraph/internal/graph"
)

// KnowledgeConfig parameterises the synthetic knowledge graph of
// Application 3 (Sec. 1): a preferential-attachment graph (skewed degree
// distribution, like entity popularity in real knowledge bases) whose
// tagged vertices stand in for entities matching a retrieval predicate.
type KnowledgeConfig struct {
	NumVertices int
	EdgesPerNew int     // attachment edges per new vertex (Barabási–Albert m)
	TagProb     float64 // fraction of entities matching the query predicate
	NumTopics   int     // popular entities around which queries cluster
	Seed        uint64
}

// DefaultKnowledgeConfig returns a knowledge-graph config with n entities.
func DefaultKnowledgeConfig(n int) KnowledgeConfig {
	return KnowledgeConfig{
		NumVertices: n,
		EdgesPerNew: 3,
		TagProb:     0.002,
		NumTopics:   max(8, n/1000),
		Seed:        0x1D9A,
	}
}

// KnowledgeNet is a generated knowledge graph. Topics are the most popular
// (highest-degree) entities; queries cluster around them, producing the
// dynamic content hotspots the paper describes.
type KnowledgeNet struct {
	G      *graph.Graph
	Topics []graph.VertexID
}

// Knowledge generates the knowledge graph via preferential attachment.
// Edge weights are 1; retrieval queries count traversal steps.
func Knowledge(cfg KnowledgeConfig) (*KnowledgeNet, error) {
	n := cfg.NumVertices
	m := cfg.EdgesPerNew
	if n < m+1 || m < 1 {
		return nil, fmt.Errorf("gen: knowledge config invalid: n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc4ceb9fe1a85ec53))

	// Repeated-endpoint list for preferential attachment: each vertex
	// appears once per incident edge, so sampling uniformly from the list
	// samples proportionally to degree.
	endpoints := make([]graph.VertexID, 0, 2*m*n)
	b := graph.NewBuilder(n)
	degree := make([]int, n)
	addEdge := func(a, c graph.VertexID) {
		b.AddBiEdge(a, c, 1)
		endpoints = append(endpoints, a, c)
		degree[a]++
		degree[c]++
	}
	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[graph.VertexID]bool, m)
		for len(chosen) < m {
			t := endpoints[rng.IntN(len(endpoints))]
			if t != graph.VertexID(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			addEdge(graph.VertexID(v), t)
		}
	}

	tags := make([]bool, n)
	for i := range tags {
		if rng.Float64() < cfg.TagProb {
			tags[i] = true
		}
	}
	b.SetTags(tags)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Topics: the NumTopics highest-degree entities.
	topics := topKByDegree(degree, cfg.NumTopics)
	return &KnowledgeNet{G: g, Topics: topics}, nil
}

func topKByDegree(degree []int, k int) []graph.VertexID {
	type dv struct {
		v graph.VertexID
		d int
	}
	// Simple selection: keep a slice of the best k (k is small).
	best := make([]dv, 0, k+1)
	for v, d := range degree {
		pos := len(best)
		for pos > 0 && best[pos-1].d < d {
			pos--
		}
		if pos < k {
			best = append(best, dv{})
			copy(best[pos+1:], best[pos:])
			best[pos] = dv{graph.VertexID(v), d}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]graph.VertexID, len(best))
	for i, x := range best {
		out[i] = x.v
	}
	return out
}
