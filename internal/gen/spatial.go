package gen

import (
	"math"

	"qgraph/internal/graph"
)

// SpatialIndex buckets vertices of a coordinate-bearing graph into a
// uniform grid for nearest-vertex and radius queries. Workload generators
// use it to turn "a point near this city" into a concrete start vertex.
type SpatialIndex struct {
	cell       float64
	minX, minY float64
	cols, rows int
	buckets    [][]graph.VertexID
	g          *graph.Graph
}

// NewSpatialIndex builds an index over g's coordinates with the given cell
// size (in coordinate units). g must have coordinates.
func NewSpatialIndex(g *graph.Graph, cell float64) *SpatialIndex {
	if !g.HasCoords() {
		panic("gen: spatial index requires coordinates")
	}
	coords := g.Coords()
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, c := range coords {
		minX = math.Min(minX, float64(c.X))
		minY = math.Min(minY, float64(c.Y))
		maxX = math.Max(maxX, float64(c.X))
		maxY = math.Max(maxY, float64(c.Y))
	}
	cols := int((maxX-minX)/cell) + 1
	rows := int((maxY-minY)/cell) + 1
	idx := &SpatialIndex{
		cell: cell, minX: minX, minY: minY,
		cols: cols, rows: rows,
		buckets: make([][]graph.VertexID, cols*rows),
		g:       g,
	}
	for v, c := range coords {
		b := idx.bucketOf(c)
		idx.buckets[b] = append(idx.buckets[b], graph.VertexID(v))
	}
	return idx
}

func (s *SpatialIndex) bucketOf(c graph.Coord) int {
	col := int((float64(c.X) - s.minX) / s.cell)
	row := int((float64(c.Y) - s.minY) / s.cell)
	col = min(max(col, 0), s.cols-1)
	row = min(max(row, 0), s.rows-1)
	return row*s.cols + col
}

// Nearest returns the vertex closest to p (Euclidean), searching outward
// ring by ring from p's bucket.
func (s *SpatialIndex) Nearest(p graph.Coord) graph.VertexID {
	col := min(max(int((float64(p.X)-s.minX)/s.cell), 0), s.cols-1)
	row := min(max(int((float64(p.Y)-s.minY)/s.cell), 0), s.rows-1)
	best := graph.NilVertex
	bestD := math.Inf(1)
	maxRing := max(s.cols, s.rows)
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, one extra ring suffices: anything
		// farther out is at least (ring-1)*cell away.
		if best != graph.NilVertex && float64(ring-1)*s.cell > bestD {
			break
		}
		for dr := -ring; dr <= ring; dr++ {
			for dc := -ring; dc <= ring; dc++ {
				if max(abs(dr), abs(dc)) != ring {
					continue // interior already visited
				}
				r, c := row+dr, col+dc
				if r < 0 || r >= s.rows || c < 0 || c >= s.cols {
					continue
				}
				for _, v := range s.buckets[r*s.cols+c] {
					d := p.Dist(s.g.Coord(v))
					if d < bestD {
						bestD = d
						best = v
					}
				}
			}
		}
	}
	return best
}

// Within returns all vertices within radius of p.
func (s *SpatialIndex) Within(p graph.Coord, radius float64) []graph.VertexID {
	ring := int(radius/s.cell) + 1
	col := min(max(int((float64(p.X)-s.minX)/s.cell), 0), s.cols-1)
	row := min(max(int((float64(p.Y)-s.minY)/s.cell), 0), s.rows-1)
	var out []graph.VertexID
	for dr := -ring; dr <= ring; dr++ {
		for dc := -ring; dc <= ring; dc++ {
			r, c := row+dr, col+dc
			if r < 0 || r >= s.rows || c < 0 || c >= s.cols {
				continue
			}
			for _, v := range s.buckets[r*s.cols+c] {
				if p.Dist(s.g.Coord(v)) <= radius {
					out = append(out, v)
				}
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
