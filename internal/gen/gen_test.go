package gen

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qgraph/internal/graph"
)

func testRoadConfig() RoadConfig {
	return RoadConfig{
		CellsX: 30, CellsY: 20, CellKM: 0.5, Jitter: 0.3,
		RemoveProb: 0.1, DiagProb: 0.05,
		HighwayEvery: 8, LocalSpeed: 50, HighwaySpeed: 100,
		NumCities: 5, ZipfS: 1, TagProb: 0.01, Seed: 3,
	}
}

func TestRoadBasics(t *testing.T) {
	net, err := Road(testRoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := net.G
	if g.NumVertices() != 600 {
		t.Fatalf("vertices = %d, want 600", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasCoords() || !g.HasTags() {
		t.Fatal("road network must carry coords and tags")
	}
	if len(net.Cities) != 5 {
		t.Fatalf("cities = %d", len(net.Cities))
	}
	// Populations are Zipf: strictly decreasing.
	for i := 1; i < len(net.Cities); i++ {
		if net.Cities[i].Pop >= net.Cities[i-1].Pop {
			t.Fatalf("populations not decreasing at %d", i)
		}
	}
}

// TestRoadConnected: the repair pass guarantees full strong connectivity
// (roads are bidirectional) for a spread of seeds and removal rates.
func TestRoadConnected(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := testRoadConfig()
		cfg.Seed = seed
		cfg.RemoveProb = 0.25 // aggressive: the repair pass must cope
		net, err := Road(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		return graph.ConnectedFrom(net.G, 0) == net.G.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRoadDeterministic: the same config yields the same graph.
func TestRoadDeterministic(t *testing.T) {
	a, err := Road(testRoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Road(testRoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.G.NumEdges(), b.G.NumEdges())
	}
	for v := 0; v < a.G.NumVertices(); v++ {
		ea, eb := a.G.Out(graph.VertexID(v)), b.G.Out(graph.VertexID(v))
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("vertex %d edge %d differs", v, i)
			}
		}
	}
}

// TestRoadWeightsAreTravelTimes: every edge weight equals distance/speed
// within the modeled speed range.
func TestRoadWeightsAreTravelTimes(t *testing.T) {
	cfg := testRoadConfig()
	net, err := Road(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := net.G
	for v := 0; v < g.NumVertices(); v++ {
		for _, e := range g.Out(graph.VertexID(v)) {
			length := g.Coord(graph.VertexID(v)).Dist(g.Coord(e.To))
			tooFast := float32(length / cfg.HighwaySpeed * 3600 * 0.99)
			tooSlow := float32(length / cfg.LocalSpeed * 3600 * 1.01)
			if e.Weight < tooFast || e.Weight > tooSlow {
				t.Fatalf("edge %d→%d: weight %v outside [%v,%v] for length %.3f",
					v, e.To, e.Weight, tooFast, tooSlow, length)
			}
		}
	}
}

func TestBWGYConfigSizes(t *testing.T) {
	bw := BWConfig(64)
	if n := bw.CellsX * bw.CellsY; n < 20000 || n > 40000 {
		t.Fatalf("BW/64 size %d out of expected range", n)
	}
	gy := GYConfig(196)
	if gy.NumCities != 64 {
		t.Fatalf("GY cities = %d, want 64", gy.NumCities)
	}
	if bw.NumCities != 16 {
		t.Fatalf("BW cities = %d, want 16", bw.NumCities)
	}
}

func TestSpatialIndexNearest(t *testing.T) {
	net, err := Road(testRoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 50; trial++ {
		p := graph.Coord{X: float32(rng.Float64() * 15), Y: float32(rng.Float64() * 10)}
		got := net.Index.Nearest(p)
		// Brute force reference.
		best, bestD := graph.NilVertex, -1.0
		for v := 0; v < net.G.NumVertices(); v++ {
			d := p.Dist(net.G.Coord(graph.VertexID(v)))
			if bestD < 0 || d < bestD {
				best, bestD = graph.VertexID(v), d
			}
		}
		if p.Dist(net.G.Coord(got)) > bestD+1e-9 {
			t.Fatalf("Nearest(%v) = %d (d=%.4f), brute force %d (d=%.4f)",
				p, got, p.Dist(net.G.Coord(got)), best, bestD)
		}
	}
}

func TestSpatialIndexWithin(t *testing.T) {
	net, err := Road(testRoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	center := net.G.Coord(net.Cities[0].Vertex)
	got := net.Index.Within(center, 2.0)
	want := 0
	for v := 0; v < net.G.NumVertices(); v++ {
		if center.Dist(net.G.Coord(graph.VertexID(v))) <= 2.0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Within: got %d, want %d", len(got), want)
	}
}

func TestSocialBasics(t *testing.T) {
	cfg := DefaultSocialConfig(3000)
	net, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.G.NumVertices() != 3000 {
		t.Fatalf("vertices = %d", net.G.NumVertices())
	}
	if graph.ConnectedFrom(net.G, 0) != 3000 {
		t.Fatal("social graph not connected")
	}
	if len(net.Hubs) == 0 {
		t.Fatal("no hubs")
	}
	// Community assignment covers every vertex consistently.
	seen := 0
	for ci, mem := range net.Communities {
		for _, v := range mem {
			if int(net.CommunityOf[v]) != ci {
				t.Fatalf("vertex %d community mismatch", v)
			}
			seen++
		}
	}
	if seen != 3000 {
		t.Fatalf("communities cover %d vertices", seen)
	}
	// Hubs really have high degree.
	for _, h := range net.Hubs {
		if net.G.OutDegree(h) < cfg.HubDegree/2 {
			t.Fatalf("hub %d degree %d too small", h, net.G.OutDegree(h))
		}
	}
}

func TestKnowledgeBasics(t *testing.T) {
	cfg := DefaultKnowledgeConfig(2000)
	net, err := Knowledge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.G.NumVertices() != 2000 {
		t.Fatalf("vertices = %d", net.G.NumVertices())
	}
	if graph.ConnectedFrom(net.G, 0) != 2000 {
		t.Fatal("knowledge graph not connected (preferential attachment must connect)")
	}
	if !net.G.HasTags() {
		t.Fatal("knowledge graph must carry tags")
	}
	// Topics are sorted by degree: first topic has the max degree.
	maxDeg := 0
	for v := 0; v < net.G.NumVertices(); v++ {
		if d := net.G.OutDegree(graph.VertexID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if net.G.OutDegree(net.Topics[0]) != maxDeg {
		t.Fatalf("top topic degree %d, max %d", net.G.OutDegree(net.Topics[0]), maxDeg)
	}
	// Preferential attachment yields a skewed degree distribution: the max
	// degree far exceeds the mean.
	mean := float64(net.G.NumEdges()) / float64(net.G.NumVertices())
	if float64(maxDeg) < 5*mean {
		t.Fatalf("degree distribution not skewed: max %d, mean %.1f", maxDeg, mean)
	}
}

func TestRoadRejectsBadConfig(t *testing.T) {
	cfg := testRoadConfig()
	cfg.CellsX = 1
	if _, err := Road(cfg); err == nil {
		t.Fatal("tiny grid accepted")
	}
	cfg = testRoadConfig()
	cfg.NumCities = 0
	if _, err := Road(cfg); err == nil {
		t.Fatal("zero cities accepted")
	}
}
