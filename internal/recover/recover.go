// Package recovery holds the worker-failure recovery policy of the
// controller: planning partition handoffs from dead workers to survivors,
// tracking one recovery episode's rounds (who must acknowledge the new
// ownership map, which respawned workers are rejoining, how long the
// episode took), and the counters surfaced through /stats.
//
// The package is deliberately free of event-loop code: the controller's
// single-goroutine state machine (internal/controller/recover.go) drives a
// Tracker and applies Plans, so every decision here is a pure function of
// explicit inputs and unit-testable without a running cluster.
//
// Directory note: the import path is internal/recover, but the package is
// named recovery so importers do not shadow the builtin recover.
package recovery

import (
	"sync/atomic"
	"time"

	"qgraph/internal/partition"
)

// PlanHandoff reassigns every vertex owned by a lost worker to a surviving
// worker, least-loaded first, mutating owner and counts in place. It
// returns the number of vertices that changed owner. The scan order is the
// vertex id order, so every replica of the plan is deterministic.
func PlanHandoff(owner partition.Assignment, counts []int64, lost func(partition.WorkerID) bool) int {
	moved := 0
	for v, w := range owner {
		if !lost(w) {
			continue
		}
		to := leastLoadedLive(counts, lost)
		if to < 0 {
			return moved // no survivors: nothing can adopt
		}
		owner[v] = partition.WorkerID(to)
		counts[w]--
		counts[to]++
		moved++
	}
	return moved
}

// RemapOwners rewrites any lost owner in owners (the NewOwners of an
// aborted, to-be-retried mutation batch) to a surviving worker. The listed
// vertices are not yet reflected in counts (they are counted when the
// retried batch commits), so balancing works on a scratch copy and counts
// is left untouched.
func RemapOwners(owners []partition.WorkerID, counts []int64, lost func(partition.WorkerID) bool) {
	scratch := append([]int64(nil), counts...)
	for i, w := range owners {
		if lost(w) {
			to := leastLoadedLive(scratch, lost)
			if to < 0 {
				return
			}
			owners[i] = partition.WorkerID(to)
		}
		scratch[owners[i]]++
	}
}

func leastLoadedLive(counts []int64, lost func(partition.WorkerID) bool) int {
	best := -1
	for w := range counts {
		if lost(partition.WorkerID(w)) {
			continue
		}
		if best < 0 || counts[w] < counts[best] {
			best = w
		}
	}
	return best
}

// Tracker is one recovery episode's bookkeeping. An episode starts at the
// first worker death and ends when a round's every live worker has
// acknowledged the recovery generation; further deaths during an episode
// start new rounds (with a new generation) inside the same episode, so the
// measured duration covers the whole outage.
type Tracker struct {
	gen       int32
	active    bool
	startedAt time.Time

	// awaitHello holds dead workers a respawn was launched for; until the
	// deadline the round is deferred so the respawned worker can adopt its
	// old partition in place (no ownership churn).
	awaitHello map[partition.WorkerID]bool
	helloBy    time.Time

	// rejoining holds workers granted back into the live set this round.
	rejoining map[partition.WorkerID]bool

	need map[partition.WorkerID]bool
	acks map[partition.WorkerID]bool
}

// Active reports whether an episode is in progress.
func (t *Tracker) Active() bool { return t.active }

// Gen returns the current recovery generation.
func (t *Tracker) Gen() int32 { return t.gen }

// StartedAt returns the episode start time (zero when idle).
func (t *Tracker) StartedAt() time.Time { return t.startedAt }

// BeginRound opens a new round: the generation advances and all round
// state clears. The episode start time is set on the first round only.
func (t *Tracker) BeginRound(now time.Time) int32 {
	t.gen++
	if !t.active {
		t.active = true
		t.startedAt = now
	}
	t.awaitHello = nil
	t.helloBy = time.Time{}
	t.rejoining = nil
	t.need = nil
	t.acks = nil
	return t.gen
}

// AwaitHello defers the round until w's respawn says hello (or deadline
// passes). Multiple workers may be awaited in one round.
func (t *Tracker) AwaitHello(w partition.WorkerID, deadline time.Time) {
	if t.awaitHello == nil {
		t.awaitHello = make(map[partition.WorkerID]bool)
	}
	t.awaitHello[w] = true
	if t.helloBy.IsZero() || deadline.After(t.helloBy) {
		t.helloBy = deadline
	}
}

// Waiting reports whether the round is still deferred on respawn hellos at
// time now. Once every awaited worker said hello — or the deadline passed
// — the round should proceed.
func (t *Tracker) Waiting(now time.Time) bool {
	return len(t.awaitHello) > 0 && now.Before(t.helloBy)
}

// OnHello records a respawned worker's hello. It reports whether the
// worker was part of this episode's dead set awaiting respawn.
func (t *Tracker) OnHello(w partition.WorkerID) bool {
	if !t.awaitHello[w] {
		return false
	}
	delete(t.awaitHello, w)
	t.markRejoining(w)
	return true
}

// markRejoining adds w to the set granted back this round.
func (t *Tracker) markRejoining(w partition.WorkerID) {
	if t.rejoining == nil {
		t.rejoining = make(map[partition.WorkerID]bool)
	}
	t.rejoining[w] = true
}

// MarkRejoining is the exported form for late hellos (a worker admitted
// back after its partition was already handed off).
func (t *Tracker) MarkRejoining(w partition.WorkerID) { t.markRejoining(w) }

// Rejoining reports whether w is being granted back this round.
func (t *Tracker) Rejoining(w partition.WorkerID) bool { return t.rejoining[w] }

// ExpectAcks arms the acknowledgement set: the round completes once every
// listed worker acknowledged the current generation.
func (t *Tracker) ExpectAcks(ws []partition.WorkerID) {
	t.need = make(map[partition.WorkerID]bool, len(ws))
	for _, w := range ws {
		t.need[w] = true
	}
	t.acks = make(map[partition.WorkerID]bool, len(ws))
}

// OnAck records a worker's acknowledgement of generation gen. It returns
// fresh=false for stale or unexpected acks, and done=true once every
// expected worker acknowledged.
func (t *Tracker) OnAck(w partition.WorkerID, gen int32) (fresh, done bool) {
	if gen != t.gen || t.need == nil || !t.need[w] || t.acks[w] {
		return false, false
	}
	t.acks[w] = true
	return true, len(t.acks) == len(t.need)
}

// Finish closes the episode and returns its duration.
func (t *Tracker) Finish(now time.Time) time.Duration {
	d := now.Sub(t.startedAt)
	t.active = false
	t.startedAt = time.Time{}
	t.awaitHello, t.rejoining, t.need, t.acks = nil, nil, nil, nil
	return d
}

// Stats is a snapshot of the recovery counters surfaced through /stats.
type Stats struct {
	// Recoveries counts completed recovery episodes.
	Recoveries int64 `json:"recoveries"`
	// Handoffs counts workers whose partition was handed to survivors;
	// Rejoins counts respawned workers granted back into the live set.
	Handoffs int64 `json:"handoffs"`
	Rejoins  int64 `json:"rejoins"`
	// QueriesRestarted counts in-flight queries re-run from superstep 0.
	QueriesRestarted int64 `json:"queries_restarted"`
	// LastRecoveryMS is the wall time of the latest completed episode.
	LastRecoveryMS float64 `json:"last_recovery_ms,omitempty"`
}

// Counters accumulates recovery statistics; all methods are safe for
// concurrent use (the event loop writes, HTTP handlers read).
type Counters struct {
	recoveries       atomic.Int64
	handoffs         atomic.Int64
	rejoins          atomic.Int64
	queriesRestarted atomic.Int64
	lastNanos        atomic.Int64
}

// Episode records one completed episode.
func (c *Counters) Episode(d time.Duration, handoffs, rejoins, restarted int) {
	c.recoveries.Add(1)
	c.handoffs.Add(int64(handoffs))
	c.rejoins.Add(int64(rejoins))
	c.queriesRestarted.Add(int64(restarted))
	c.lastNanos.Store(int64(d))
}

// Snapshot returns the current totals.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Recoveries:       c.recoveries.Load(),
		Handoffs:         c.handoffs.Load(),
		Rejoins:          c.rejoins.Load(),
		QueriesRestarted: c.queriesRestarted.Load(),
		LastRecoveryMS:   float64(c.lastNanos.Load()) / float64(time.Millisecond),
	}
}
