package recovery

import (
	"testing"
	"time"

	"qgraph/internal/partition"
)

func lostSet(ws ...partition.WorkerID) func(partition.WorkerID) bool {
	m := map[partition.WorkerID]bool{}
	for _, w := range ws {
		m[w] = true
	}
	return func(w partition.WorkerID) bool { return m[w] }
}

func TestPlanHandoffBalancesOntoSurvivors(t *testing.T) {
	// 12 vertices over 3 workers round-robin; worker 1 dies.
	owner := make(partition.Assignment, 12)
	counts := make([]int64, 3)
	for v := range owner {
		owner[v] = partition.WorkerID(v % 3)
		counts[v%3]++
	}
	moved := PlanHandoff(owner, counts, lostSet(1))
	if moved != 4 {
		t.Fatalf("moved %d vertices, want 4", moved)
	}
	if counts[1] != 0 {
		t.Fatalf("dead worker still owns %d vertices", counts[1])
	}
	if counts[0]+counts[2] != 12 || counts[0] != 6 || counts[2] != 6 {
		t.Fatalf("unbalanced handoff: %v", counts)
	}
	for v, w := range owner {
		if w == 1 {
			t.Fatalf("vertex %d still owned by dead worker", v)
		}
	}
}

func TestPlanHandoffDeterministic(t *testing.T) {
	mk := func() (partition.Assignment, []int64) {
		owner := make(partition.Assignment, 20)
		counts := make([]int64, 4)
		for v := range owner {
			owner[v] = partition.WorkerID(v % 4)
			counts[v%4]++
		}
		return owner, counts
	}
	a1, c1 := mk()
	a2, c2 := mk()
	PlanHandoff(a1, c1, lostSet(0, 2))
	PlanHandoff(a2, c2, lostSet(0, 2))
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatalf("non-deterministic plan at vertex %d: %d vs %d", v, a1[v], a2[v])
		}
	}
}

func TestPlanHandoffNoSurvivors(t *testing.T) {
	owner := partition.Assignment{0, 0}
	counts := []int64{2}
	if moved := PlanHandoff(owner, counts, lostSet(0)); moved != 0 {
		t.Fatalf("moved %d with no survivors", moved)
	}
}

func TestRemapOwners(t *testing.T) {
	owners := []partition.WorkerID{1, 0, 1}
	counts := []int64{5, 3, 4}
	RemapOwners(owners, counts, lostSet(1))
	for _, w := range owners {
		if w == 1 {
			t.Fatal("lost owner survived remap")
		}
	}
	// The remapped vertices are counted only when their batch commits.
	if counts[0] != 5 || counts[1] != 3 || counts[2] != 4 {
		t.Fatalf("counts mutated by remap: %v", counts)
	}
	// Both remapped vertices land on worker 2: it stays the least loaded
	// on the scratch counts (4→5 vs worker 0's 5→6) throughout the call.
	if owners[0] != 2 || owners[1] != 0 || owners[2] != 2 {
		t.Fatalf("remapped owners %v, want [2 0 2]", owners)
	}
}

func TestTrackerEpisode(t *testing.T) {
	var tr Tracker
	t0 := time.Unix(100, 0)
	if tr.Active() {
		t.Fatal("fresh tracker active")
	}
	gen := tr.BeginRound(t0)
	if gen != 1 || !tr.Active() {
		t.Fatalf("gen %d active %v after first round", gen, tr.Active())
	}
	tr.ExpectAcks([]partition.WorkerID{0, 2})
	if fresh, _ := tr.OnAck(0, gen-1); fresh {
		t.Fatal("stale-generation ack accepted")
	}
	if fresh, done := tr.OnAck(0, gen); !fresh || done {
		t.Fatal("first ack mishandled")
	}
	if fresh, _ := tr.OnAck(0, gen); fresh {
		t.Fatal("duplicate ack accepted")
	}
	if fresh, _ := tr.OnAck(1, gen); fresh {
		t.Fatal("unexpected worker's ack accepted")
	}
	// Second death mid-round: new round, old acks discarded.
	gen2 := tr.BeginRound(t0.Add(time.Second))
	if gen2 != 2 {
		t.Fatalf("gen %d after second round, want 2", gen2)
	}
	if tr.StartedAt() != t0 {
		t.Fatal("episode start moved on second round")
	}
	tr.ExpectAcks([]partition.WorkerID{0})
	if _, done := tr.OnAck(0, gen2); !done {
		t.Fatal("round did not complete")
	}
	if d := tr.Finish(t0.Add(3 * time.Second)); d != 3*time.Second {
		t.Fatalf("episode duration %v, want 3s", d)
	}
	if tr.Active() {
		t.Fatal("tracker active after finish")
	}
}

func TestTrackerHelloFlow(t *testing.T) {
	var tr Tracker
	t0 := time.Unix(0, 0)
	tr.BeginRound(t0)
	tr.AwaitHello(1, t0.Add(time.Second))
	if !tr.Waiting(t0.Add(500 * time.Millisecond)) {
		t.Fatal("not waiting inside deadline")
	}
	if tr.OnHello(2) {
		t.Fatal("hello from unawaited worker accepted")
	}
	if !tr.OnHello(1) {
		t.Fatal("hello from awaited worker rejected")
	}
	if !tr.Rejoining(1) {
		t.Fatal("hello did not mark worker rejoining")
	}
	if tr.Waiting(t0.Add(500 * time.Millisecond)) {
		t.Fatal("still waiting after all hellos arrived")
	}

	tr.BeginRound(t0.Add(2 * time.Second))
	tr.AwaitHello(2, t0.Add(3*time.Second))
	if tr.Waiting(t0.Add(5 * time.Second)) {
		t.Fatal("waiting past the deadline")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Episode(250*time.Millisecond, 1, 0, 3)
	c.Episode(100*time.Millisecond, 0, 1, 2)
	s := c.Snapshot()
	if s.Recoveries != 2 || s.Handoffs != 1 || s.Rejoins != 1 || s.QueriesRestarted != 5 {
		t.Fatalf("stats %+v", s)
	}
	if s.LastRecoveryMS != 100 {
		t.Fatalf("last recovery %v ms, want 100", s.LastRecoveryMS)
	}
}
