// Package partition provides the initial (static) graph partitioning
// algorithms of the paper's evaluation — Hash, Domain, and LDG [36] — plus
// the quality metrics used to compare them. The query-aware Q-cut algorithm
// that refines these at runtime lives in internal/qcut.
package partition

import (
	"fmt"

	"qgraph/internal/graph"
)

// WorkerID indexes a worker (partition). The engine supports up to 255
// workers; the paper evaluates 2–16.
type WorkerID uint8

// MaxWorkers is the largest supported worker count.
const MaxWorkers = 255

// Assignment maps every vertex to its owning worker. It is the low-level
// representation the controller's high-level query-cut is translated into.
type Assignment []WorkerID

// NumWorkers returns k for a validated assignment (max owner + 1 would be
// wrong for empty partitions, so callers carry k; this scans for bound
// checking in tests).
func (a Assignment) Validate(k int) error {
	if k < 1 || k > MaxWorkers {
		return fmt.Errorf("partition: worker count %d out of range", k)
	}
	for v, w := range a {
		if int(w) >= k {
			return fmt.Errorf("partition: vertex %d assigned to worker %d >= k=%d", v, w, k)
		}
	}
	return nil
}

// Counts returns the number of vertices per worker.
func (a Assignment) Counts(k int) []int {
	counts := make([]int, k)
	for _, w := range a {
		counts[w]++
	}
	return counts
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}

// Partitioner computes an initial assignment of graph vertices to k
// workers.
type Partitioner interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Partition assigns every vertex of g to one of k workers.
	Partition(g *graph.Graph, k int) (Assignment, error)
}

// EdgeCut counts directed edges whose endpoints live on different workers —
// the classic query-agnostic quality metric the paper argues is the wrong
// objective for CGA applications (Fig. 1).
func EdgeCut(g *graph.Graph, a Assignment) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		wv := a[v]
		for _, e := range g.Out(graph.VertexID(v)) {
			if a[e.To] != wv {
				cut++
			}
		}
	}
	return cut
}

// Imbalance returns max_w |V(w)| / (n/k) − 1: zero for perfectly balanced
// partitions.
func Imbalance(a Assignment, k int) float64 {
	counts := a.Counts(k)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	avg := float64(len(a)) / float64(k)
	if avg == 0 {
		return 0
	}
	return float64(maxC)/avg - 1
}
