package partition

import (
	"fmt"
	"sort"

	"qgraph/internal/graph"
)

// Domain is the paper's best-case static partitioner (Sec. 4.1): a domain
// expert who knows the query hotspots in advance assigns each hotspot to a
// single partition. Here: every vertex joins the Voronoi cell of its
// nearest hotspot center, and whole cells are packed onto workers by
// descending expected load. Locality is near-optimal (>95% in Fig. 6f) but
// workload balance is poor, because hotspot populations are skewed.
type Domain struct {
	// Centers are the hotspot centers (city centers for road networks).
	Centers []graph.Coord
	// Weights are the expected query loads per hotspot (city populations).
	// Nil means uniform.
	Weights []float64
}

// NewDomain builds the oracle partitioner from hotspot centers and
// expected per-hotspot load.
func NewDomain(centers []graph.Coord, weights []float64) *Domain {
	return &Domain{Centers: centers, Weights: weights}
}

// Name implements Partitioner.
func (*Domain) Name() string { return "domain" }

// Partition implements Partitioner.
func (d *Domain) Partition(g *graph.Graph, k int) (Assignment, error) {
	if !g.HasCoords() {
		return nil, fmt.Errorf("partition: domain requires coordinates")
	}
	if len(d.Centers) == 0 {
		return nil, fmt.Errorf("partition: domain requires at least one hotspot center")
	}
	nc := len(d.Centers)
	weights := d.Weights
	if weights == nil {
		weights = make([]float64, nc)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != nc {
		return nil, fmt.Errorf("partition: %d weights for %d centers", len(weights), nc)
	}

	// Pack hotspots onto workers: heaviest first onto the least-loaded
	// worker (greedy LPT). This is what a sensible human expert does and
	// still leaves the imbalance the paper observes, because the heaviest
	// hotspot alone can exceed the average load.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]float64, k)
	cellWorker := make([]WorkerID, nc)
	for _, ci := range order {
		best := 0
		for w := 1; w < k; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		cellWorker[ci] = WorkerID(best)
		load[best] += weights[ci]
	}

	a := make(Assignment, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		c := g.Coord(graph.VertexID(v))
		bestCell, bestD := 0, c.Dist(d.Centers[0])
		for ci := 1; ci < nc; ci++ {
			if dd := c.Dist(d.Centers[ci]); dd < bestD {
				bestD = dd
				bestCell = ci
			}
		}
		a[v] = cellWorker[bestCell]
	}
	return a, a.Validate(k)
}

var _ Partitioner = (*Domain)(nil)
