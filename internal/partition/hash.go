package partition

import "qgraph/internal/graph"

// Hash assigns vertices to workers by a multiplicative hash of the vertex
// id. It is the paper's workload-balancing baseline: near-perfect balance,
// poor locality (~38% local query executions in Fig. 6f), because adjacent
// junctions land on different workers.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "hash" }

// Partition implements Partitioner.
func (Hash) Partition(g *graph.Graph, k int) (Assignment, error) {
	n := g.NumVertices()
	a := make(Assignment, n)
	for v := 0; v < n; v++ {
		a[v] = WorkerID(hash32(uint32(v)) % uint32(k))
	}
	return a, a.Validate(k)
}

// hash32 is a Fibonacci/avalanche mix so that consecutive vertex ids spread
// uniformly (plain v%k would stripe a grid graph and accidentally carry
// spatial structure).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

var _ Partitioner = Hash{}
