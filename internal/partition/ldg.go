package partition

import "qgraph/internal/graph"

// LDG is linear deterministic greedy streaming partitioning
// (Stanton & Kliot, KDD'12 — reference [36] of the paper): vertices stream
// in id order and each joins the worker holding most of its neighbors,
// discounted by a capacity penalty. The paper tested LDG as the
// state-of-the-art static baseline but excluded it from the plots because
// the skewed query workload made its partitions highly imbalanced in terms
// of *query* load; we implement it so that finding can be reproduced.
type LDG struct {
	// Slack is the allowed overshoot of the capacity n/k (default 0.1).
	Slack float64
}

// Name implements Partitioner.
func (LDG) Name() string { return "ldg" }

// Partition implements Partitioner.
func (l LDG) Partition(g *graph.Graph, k int) (Assignment, error) {
	n := g.NumVertices()
	slack := l.Slack
	if slack <= 0 {
		slack = 0.1
	}
	capacity := float64(n)/float64(k)*(1+slack) + 1
	a := make(Assignment, n)
	assigned := make([]bool, n)
	sizes := make([]float64, k)
	neigh := make([]int, k)

	for v := 0; v < n; v++ {
		for i := range neigh {
			neigh[i] = 0
		}
		// Count already-placed neighbors per worker (out-edges; the graphs
		// here are symmetric so this sees both directions in aggregate).
		for _, e := range g.Out(graph.VertexID(v)) {
			if assigned[e.To] {
				neigh[a[e.To]]++
			}
		}
		best, bestScore := 0, -1.0
		for w := 0; w < k; w++ {
			penalty := 1 - sizes[w]/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := float64(neigh[w]) * penalty
			// Tie-break toward the emptiest worker so the stream start
			// (no placed neighbors anywhere) spreads out.
			if score > bestScore || (score == bestScore && sizes[w] < sizes[best]) {
				best, bestScore = w, score
			}
		}
		a[v] = WorkerID(best)
		assigned[v] = true
		sizes[best]++
	}
	return a, a.Validate(k)
}

var _ Partitioner = LDG{}
