package partition

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"qgraph/internal/graph"
)

// gridGraph builds an nx×ny undirected grid with coordinates.
func gridGraph(nx, ny int) *graph.Graph {
	b := graph.NewBuilder(nx * ny)
	coords := make([]graph.Coord, nx*ny)
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			coords[id(x, y)] = graph.Coord{X: float32(x), Y: float32(y)}
			if x+1 < nx {
				b.AddBiEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < ny {
				b.AddBiEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	b.SetCoords(coords)
	return b.MustBuild()
}

// TestPartitionersTotal is the fundamental property: every partitioner
// assigns every vertex to exactly one valid worker.
func TestPartitionersTotal(t *testing.T) {
	g := gridGraph(20, 20)
	dom := NewDomain([]graph.Coord{{X: 2, Y: 2}, {X: 17, Y: 3}, {X: 9, Y: 16}}, []float64{5, 3, 1})
	for _, p := range []Partitioner{Hash{}, LDG{}, dom} {
		for _, k := range []int{1, 2, 3, 8, 16} {
			a, err := p.Partition(g, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
			if len(a) != g.NumVertices() {
				t.Fatalf("%s k=%d: covers %d vertices", p.Name(), k, len(a))
			}
			if err := a.Validate(k); err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
		}
	}
}

// TestHashBalance: hash partitions are near-perfectly balanced.
func TestHashBalance(t *testing.T) {
	g := gridGraph(50, 50)
	for _, k := range []int{2, 4, 8, 16} {
		a, err := Hash{}.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if imb := Imbalance(a, k); imb > 0.15 {
			t.Fatalf("k=%d: hash imbalance %.3f", k, imb)
		}
	}
}

// TestDomainLocality: on a grid with separated hotspots, Domain cuts far
// fewer edges than Hash — the locality/balance trade the evaluation
// explores.
func TestDomainLocality(t *testing.T) {
	g := gridGraph(40, 40)
	centers := []graph.Coord{{X: 5, Y: 5}, {X: 35, Y: 5}, {X: 5, Y: 35}, {X: 35, Y: 35}}
	dom := NewDomain(centers, nil)
	k := 4
	da, err := dom.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := Hash{}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	dcut, hcut := EdgeCut(g, da), EdgeCut(g, ha)
	if dcut*10 > hcut {
		t.Fatalf("domain cut %d not ≪ hash cut %d", dcut, hcut)
	}
}

// TestDomainSkewedWeights: with skewed hotspot weights and fewer workers
// than hotspots, heavy hotspots land alone (LPT packing).
func TestDomainSkewedWeights(t *testing.T) {
	g := gridGraph(30, 30)
	centers := []graph.Coord{{X: 5, Y: 15}, {X: 15, Y: 15}, {X: 25, Y: 15}}
	dom := NewDomain(centers, []float64{100, 1, 1})
	a, err := dom.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy hotspot's worker must differ from the two light ones'.
	heavy := a[graph.VertexID(15*30+5)]
	light1 := a[graph.VertexID(15*30+15)]
	light2 := a[graph.VertexID(15*30+25)]
	if light1 != light2 || heavy == light1 {
		t.Fatalf("LPT packing wrong: heavy=%d light=%d,%d", heavy, light1, light2)
	}
}

func TestDomainRequiresCoords(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild()
	dom := NewDomain([]graph.Coord{{}}, nil)
	if _, err := dom.Partition(g, 2); err == nil {
		t.Fatal("coordinate-less graph accepted")
	}
}

// TestLDGBalanceAndLocality: LDG respects its capacity slack and beats
// Hash on edge-cut.
func TestLDGBalanceAndLocality(t *testing.T) {
	g := gridGraph(40, 40)
	k := 8
	a, err := LDG{Slack: 0.1}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(a, k); imb > 0.15 {
		t.Fatalf("LDG imbalance %.3f exceeds slack", imb)
	}
	ha, _ := Hash{}.Partition(g, k)
	if EdgeCut(g, a) >= EdgeCut(g, ha) {
		t.Fatalf("LDG cut %d not better than hash cut %d", EdgeCut(g, a), EdgeCut(g, ha))
	}
}

// TestEdgeCutBounds: edge cut is 0 for k=1 and never exceeds the edge
// count (property-based over random assignments).
func TestEdgeCutBounds(t *testing.T) {
	g := gridGraph(15, 15)
	one, _ := Hash{}.Partition(g, 1)
	if EdgeCut(g, one) != 0 {
		t.Fatal("k=1 cut nonzero")
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		k := 2 + rng.IntN(6)
		a := make(Assignment, g.NumVertices())
		for v := range a {
			a[v] = WorkerID(rng.IntN(k))
		}
		cut := EdgeCut(g, a)
		return cut >= 0 && cut <= g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceMetric(t *testing.T) {
	a := Assignment{0, 0, 0, 1} // 3 vs 1, avg 2 → max/avg - 1 = 0.5
	if imb := Imbalance(a, 2); imb != 0.5 {
		t.Fatalf("imbalance = %v, want 0.5", imb)
	}
	b := Assignment{0, 1, 0, 1}
	if imb := Imbalance(b, 2); imb != 0 {
		t.Fatalf("balanced imbalance = %v", imb)
	}
}

func TestValidateRejects(t *testing.T) {
	a := Assignment{0, 3}
	if err := a.Validate(2); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if err := a.Validate(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
