module qgraph

go 1.24
